//! Parallel, scratch-backed random-forest training engine.
//!
//! [`RandomForest::fit`](crate::forest::RandomForest::fit) re-sorts the
//! node's samples for every candidate feature of every split and allocates a
//! boxed node per tree position, which makes retraining the dominant cost of
//! the paper's self-learning loop. This module is the training twin of
//! [`FlatForest`]: a [`TrainingSet`] stores the design matrix in **block-major
//! columns** — the pool is cut into fixed-size sample blocks, each block
//! holding its feature values feature-major — and keeps one **sorted run of
//! block-relative u16 ids per block per feature**; tree growth then runs on a
//! reusable [`SplitScratch`] whose per-feature index segments are kept sorted
//! by stable partitioning at each split (no per-node sorting), and nodes are
//! appended to a [`NodeArena`] in DFS preorder (no per-node boxing). Trees
//! are fitted in parallel over the `seizure-parallel` scoped threads.
//!
//! The block-run layout serves the self-learning loop, whose training set
//! only ever *grows* and whose incremental trainer refits each tree on the
//! block subset it owns:
//!
//! * [`TrainingSet::append_rows`] sorts the new ids into the tail block's run
//!   (one bounded in-place merge) and builds fresh runs for wholly new
//!   blocks, so growing the pool costs O(batch log batch) — no global merge
//!   over the untouched prefix;
//! * `load_tree` k-way-merges only the runs of the blocks a tree's job
//!   selects, so a subset-tree refit reads O(owned blocks) per feature
//!   instead of O(pool). The merge pops runs by `(value, block ordinal)` —
//!   value order via `f64::total_cmp`, ties broken toward the earlier block,
//!   and within a block toward the lower relative id — which reproduces the
//!   exact `(value, global id)` order of a whole-pool stable sort, keeping
//!   refits **node-identical** to a from-scratch fit (a property-tested
//!   invariant);
//! * sample ids inside a run are block-relative u16 (blocks never exceed
//!   65 536 samples), and the scratch's id width is chosen **per selection**:
//!   narrow (u16) words whenever the selected blocks hold fewer than 65 536
//!   samples ([`IdWidth::Auto`]), halving the memory traffic of every stable
//!   partition even when the full pool has long outgrown the u16 range; the
//!   wide (u32) path packs the label into bit 31 and both widths produce
//!   bit-identical forests (a property-tested invariant).
//!
//! The engine is **bit-identical** to the boxed path: bootstrap draws come
//! from the same shared RNG stream consumed in tree order, each tree's
//! feature subsampling replays the same per-tree ChaCha8 stream, and the
//! split scan applies the same floating-point operations in the same order as
//! [`DecisionTree::fit_with_indices`](crate::tree::DecisionTree::fit_with_indices),
//! so [`train_forest`] equals `FlatForest::from_forest(&RandomForest::fit(..))`
//! node for node (a property-tested invariant).
//!
//! For retraining that reuses trees across pool growth instead of refitting
//! the whole ensemble, see
//! [`IncrementalTrainer`](crate::incremental::IncrementalTrainer), which is
//! built on the same scratch machinery and aligns its ownership blocks with
//! the run blocks here.

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::flat::{FlatForest, LEAF};
use crate::forest::RandomForestConfig;
use crate::tree::{gini, DecisionTreeConfig};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub use crate::incremental::{IncrementalTrainer, IncrementalTrainerConfig};

/// Largest sample count the narrow (u16) id word can address.
const NARROW_LIMIT: usize = u16::MAX as usize + 1;

/// Largest permitted run-block length: block-relative ids must fit u16, so
/// blocks never exceed 65 536 samples. This is also the default block length
/// for standalone sets, where it keeps any pool up to 65 536 samples in a
/// single block (one run per feature — exactly the old global presort).
pub(crate) const MAX_RUN_BLOCK: usize = NARROW_LIMIT;

// Comparison counter for run sorting/merging, tallied in debug builds only
// so tests can assert that (re)building orders scales with the touched
// blocks, not the pool.
#[cfg(debug_assertions)]
thread_local! {
    static RUN_SORT_COMPARISONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Drains the debug comparison counter (current thread).
#[cfg(all(debug_assertions, test))]
fn take_run_sort_comparisons() -> u64 {
    RUN_SORT_COMPARISONS.with(|c| c.replace(0))
}

#[inline]
fn count_run_comparison() {
    #[cfg(debug_assertions)]
    RUN_SORT_COMPARISONS.with(|c| c.set(c.get() + 1));
}

/// A design matrix prepared for scratch-backed tree growth: block-major
/// feature storage plus one presorted run of block-relative sample ids per
/// block per feature, shared read-only by every tree of the ensemble.
///
/// Storage geometry: the pool is cut into blocks of `run_block` samples
/// (only the last block may be partial), block `b` starts at flat offset
/// `b * run_block * num_features`, and within a block of `len` samples
/// feature `f` of relative sample `r` lives at `+ f * len + r`. The `order`
/// array mirrors the same geometry with u16 relative ids sorted by
/// `(value, relative id)` per `f64::total_cmp`. Every block base is
/// closed-form, so no offset table is stored.
///
/// # Example
///
/// ```
/// use seizure_ml::{RandomForestConfig, TrainingSet};
///
/// # fn main() -> Result<(), seizure_ml::MlError> {
/// // Four samples of two features, row-major.
/// let rows = [0.0, 1.0, 0.2, 0.8, 0.9, 0.1, 1.0, 0.0];
/// let set = TrainingSet::from_rows(&rows, 2, &[false, false, true, true])?;
/// let config = RandomForestConfig { n_trees: 5, ..RandomForestConfig::default() };
/// let forest = seizure_ml::train_forest(&set, &config, 1)?;
/// assert_eq!(forest.num_trees(), 5);
/// assert!(forest.predict(&[0.95, 0.05]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSet {
    num_samples: usize,
    num_features: usize,
    /// Block length of the block-major storage and of the sorted runs.
    run_block: usize,
    /// Block-major feature values (see the struct docs for the geometry).
    columns: Vec<f64>,
    labels: Vec<bool>,
    /// Per-block per-feature sorted runs of block-relative ids, in the same
    /// geometry as `columns`.
    order: Vec<u16>,
}

impl TrainingSet {
    /// Builds a training set from a flat row-major matrix
    /// (`labels.len() * num_features` values) and presorts every column.
    /// Uses the maximum run-block length, so pools up to 65 536 samples keep
    /// one run per feature.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidDataset`] for an empty set or zero feature
    /// count and [`MlError::DimensionMismatch`] if the buffer length does not
    /// equal `labels.len() * num_features`.
    pub fn from_rows(rows: &[f64], num_features: usize, labels: &[bool]) -> Result<Self, MlError> {
        Self::from_rows_in_blocks(rows, num_features, labels, MAX_RUN_BLOCK)
    }

    /// [`TrainingSet::from_rows`] with an explicit run-block length, aligning
    /// the sorted runs with an incremental trainer's ownership blocks.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrainingSet::from_rows`].
    pub(crate) fn from_rows_in_blocks(
        rows: &[f64],
        num_features: usize,
        labels: &[bool],
        run_block: usize,
    ) -> Result<Self, MlError> {
        if num_features == 0 {
            return Err(MlError::InvalidDataset {
                detail: "training set must contain at least one feature".to_string(),
            });
        }
        let n = labels.len();
        if rows.len() != n * num_features {
            return Err(MlError::DimensionMismatch {
                detail: format!(
                    "flat matrix of {} values does not cover {n} samples x {num_features} features",
                    rows.len()
                ),
            });
        }
        let mut set = Self::empty_shell(n, num_features, labels.to_vec(), run_block)?;
        let rb = set.run_block;
        for (i, row) in rows.chunks_exact(num_features).enumerate() {
            let len = set.block_len(i / rb);
            let at = (i / rb) * rb * num_features + i % rb;
            for (f, &x) in row.iter().enumerate() {
                set.columns[at + f * len] = x;
            }
        }
        set.build_runs(0);
        Ok(set)
    }

    /// Builds a training set from flat **feature-major** storage
    /// (`columns[f * n + i]` is feature `f` of sample `i`) — the persisted
    /// representation. The persistence codec restores snapshots through this
    /// constructor; the runs are a pure function of the columns and the block
    /// length, so the rebuilt order arrays are identical to the saved set's.
    /// Rebuilding sorts each block's runs independently — O(n log block), a
    /// cost that scales with the block count rather than one O(n log n)
    /// global sort per feature (asserted by a debug comparison counter).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrainingSet::from_rows`].
    pub(crate) fn from_columns(
        columns: Vec<f64>,
        num_features: usize,
        labels: Vec<bool>,
        run_block: usize,
    ) -> Result<Self, MlError> {
        if num_features == 0 {
            return Err(MlError::InvalidDataset {
                detail: "training set must contain at least one feature".to_string(),
            });
        }
        let n = labels.len();
        if columns.len() != n * num_features {
            return Err(MlError::DimensionMismatch {
                detail: format!(
                    "column storage of {} values does not cover {n} samples x {num_features} features",
                    columns.len()
                ),
            });
        }
        let mut set = Self::empty_shell(n, num_features, labels, run_block)?;
        let rb = set.run_block;
        for b in 0..set.num_blocks() {
            let len = set.block_len(b);
            let base = b * rb * num_features;
            for f in 0..num_features {
                set.columns[base + f * len..base + f * len + len]
                    .copy_from_slice(&columns[f * n + b * rb..f * n + b * rb + len]);
            }
        }
        set.build_runs(0);
        Ok(set)
    }

    /// Validates the shape and allocates zeroed block-major storage; the
    /// caller scatters values and then builds the runs.
    fn empty_shell(
        n: usize,
        num_features: usize,
        labels: Vec<bool>,
        run_block: usize,
    ) -> Result<Self, MlError> {
        if labels.is_empty() {
            return Err(MlError::InvalidDataset {
                detail: "training set must contain at least one sample".to_string(),
            });
        }
        if n > (u32::MAX >> 1) as usize {
            return Err(MlError::InvalidDataset {
                detail: "training sets are limited to 2^31 samples (31-bit ids + label bit)"
                    .to_string(),
            });
        }
        assert!(
            run_block >= 1 && run_block <= MAX_RUN_BLOCK,
            "run-block length must lie in [1, {MAX_RUN_BLOCK}], got {run_block}"
        );
        Ok(Self {
            num_samples: n,
            num_features,
            run_block,
            columns: vec![0.0; n * num_features],
            labels,
            order: vec![0u16; n * num_features],
        })
    }

    /// Builds a training set from a row-vector [`Dataset`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrainingSet::from_rows`].
    pub fn from_dataset(data: &Dataset) -> Result<Self, MlError> {
        let num_features = data.num_features();
        let mut rows = Vec::with_capacity(data.len() * num_features);
        for row in data.features() {
            rows.extend_from_slice(row);
        }
        Self::from_rows(&rows, num_features, data.labels())
    }

    /// Appends new samples (flat row-major, `labels.len() * num_features`
    /// values) to the set **without touching any full block's runs**: the
    /// tail block's run absorbs its share of the new ids through one bounded
    /// in-place merge and wholly new blocks sort their runs from scratch, so
    /// growth costs O(batch log batch) and the result is exactly the set
    /// [`TrainingSet::from_rows`] would build from the concatenated matrix
    /// (value ties keep ascending sample ids).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidDataset`] for an empty append and
    /// [`MlError::DimensionMismatch`] if the buffer length does not equal
    /// `labels.len() * num_features` features.
    pub fn append_rows(&mut self, rows: &[f64], labels: &[bool]) -> Result<(), MlError> {
        if labels.is_empty() {
            return Err(MlError::InvalidDataset {
                detail: "append requires at least one sample".to_string(),
            });
        }
        let k = labels.len();
        let nf = self.num_features;
        if rows.len() != k * nf {
            return Err(MlError::DimensionMismatch {
                detail: format!(
                    "flat matrix of {} values does not cover {k} samples x {nf} features",
                    rows.len()
                ),
            });
        }
        let n = self.num_samples;
        let total = n + k;
        if total > (u32::MAX >> 1) as usize {
            return Err(MlError::InvalidDataset {
                detail: "training sets are limited to 2^31 samples (31-bit ids + label bit)"
                    .to_string(),
            });
        }
        let rb = self.run_block;
        let tail = (n - 1) / rb;
        let old_in = n - tail * rb;
        self.columns.resize(total * nf, 0.0);
        self.order.resize(total * nf, 0u16);
        self.labels.extend_from_slice(labels);
        self.num_samples = total;

        // The tail block grows in place: each of its per-feature regions
        // moves from stride `old_in` to the grown stride, relocated back to
        // front so no unread region is overwritten (relative ids stay valid).
        let new_in = self.block_len(tail);
        if old_in < new_in {
            let base = tail * rb * nf;
            // lint: hot-path
            for f in (1..nf).rev() {
                self.columns
                    .copy_within(base + f * old_in..base + f * old_in + old_in, base + f * new_in);
                self.order
                    .copy_within(base + f * old_in..base + f * old_in + old_in, base + f * new_in);
            }
        }

        // Scatter the appended rows into their blocks.
        // lint: hot-path
        for (i, row) in rows.chunks_exact(nf).enumerate() {
            let g = n + i;
            let len = self.block_len(g / rb);
            let at = (g / rb) * rb * nf + g % rb;
            for (f, &x) in row.iter().enumerate() {
                self.columns[at + f * len] = x;
            }
        }

        if old_in < rb {
            self.merge_tail_run(tail, old_in);
        }
        self.build_runs(tail + 1);
        Ok(())
    }

    /// Sorts the runs of every block from `first_block` on (each block's
    /// relative ids sorted by `(value, relative id)` — `f64::total_cmp` with
    /// stable ties).
    fn build_runs(&mut self, first_block: usize) {
        let rb = self.run_block;
        let nf = self.num_features;
        let columns = &self.columns;
        let order = &mut self.order;
        for b in first_block..(self.num_samples + rb - 1) / rb {
            let len = (self.num_samples - b * rb).min(rb);
            let base = b * rb * nf;
            // lint: hot-path
            for f in 0..nf {
                let off = base + f * len;
                let vals = &columns[off..off + len];
                let run = &mut order[off..off + len];
                for (r, slot) in run.iter_mut().enumerate() {
                    *slot = r as u16;
                }
                run.sort_by(|&a, &b| {
                    count_run_comparison();
                    vals[a as usize].total_cmp(&vals[b as usize])
                });
            }
        }
    }

    /// Merges the tail block's fresh relative ids (`old_in..len`) into its
    /// existing sorted run, in place and back to front. The fresh ids are
    /// sorted among themselves first; on value ties the merge takes the fresh
    /// side, which is correct because every fresh relative id exceeds every
    /// existing one — so the result is the full stable `(value, id)` sort.
    fn merge_tail_run(&mut self, b: usize, old_in: usize) {
        let rb = self.run_block;
        let nf = self.num_features;
        let len = self.block_len(b);
        let base = b * rb * nf;
        let mut fresh: Vec<u16> = Vec::with_capacity(len - old_in);
        let columns = &self.columns;
        let order = &mut self.order;
        // lint: hot-path
        for f in 0..nf {
            let off = base + f * len;
            let vals = &columns[off..off + len];
            fresh.clear();
            fresh.extend((old_in..len).map(|r| r as u16));
            fresh.sort_by(|&a, &b| {
                count_run_comparison();
                vals[a as usize].total_cmp(&vals[b as usize])
            });
            let run = &mut order[off..off + len];
            let mut i = old_in; // old run occupies run[..old_in]
            let mut j = fresh.len();
            for slot in (0..len).rev() {
                if j == 0 {
                    break; // the remaining old prefix is already in place
                }
                count_run_comparison();
                let take_fresh = i == 0
                    || vals[fresh[j - 1] as usize].total_cmp(&vals[run[i - 1] as usize])
                        != std::cmp::Ordering::Less;
                if take_fresh {
                    j -= 1;
                    run[slot] = fresh[j];
                } else {
                    i -= 1;
                    run[slot] = run[i];
                }
            }
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.num_samples
    }

    /// Returns `true` if the set holds no samples (never: construction
    /// rejects empty sets).
    pub fn is_empty(&self) -> bool {
        self.num_samples == 0
    }

    /// Number of features per sample.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Labels, in sample order.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Block length of the block-major storage and sorted runs.
    pub(crate) fn run_block(&self) -> usize {
        self.run_block
    }

    /// Number of storage blocks (`ceil(len / run_block)`).
    pub(crate) fn num_blocks(&self) -> usize {
        (self.num_samples + self.run_block - 1) / self.run_block
    }

    /// Sample count of block `b` (only the last block may be partial).
    pub(crate) fn block_len(&self, b: usize) -> usize {
        (self.num_samples - b * self.run_block).min(self.run_block)
    }

    /// Feature `f`'s values of block `b`, relative-id indexed.
    pub(crate) fn block_values(&self, f: usize, b: usize) -> &[f64] {
        let len = self.block_len(b);
        let off = b * self.run_block * self.num_features + f * len;
        &self.columns[off..off + len]
    }

    /// Feature `f`'s sorted run of block `b` (block-relative ids).
    fn block_run(&self, f: usize, b: usize) -> &[u16] {
        let len = self.block_len(b);
        let off = b * self.run_block * self.num_features + f * len;
        &self.order[off..off + len]
    }

    /// Block `b`'s full feature-major storage (`num_features * block_len`
    /// values) — already in the per-selection layout a single-block tree job
    /// reads, so such jobs borrow it zero-copy.
    fn block_storage(&self, b: usize) -> &[f64] {
        let len = self.block_len(b);
        let base = b * self.run_block * self.num_features;
        &self.columns[base..base + self.num_features * len]
    }

    /// Block `b`'s labels, relative-id indexed.
    fn block_labels(&self, b: usize) -> &[bool] {
        let start = b * self.run_block;
        &self.labels[start..start + self.block_len(b)]
    }

    /// Bytes held by the presorted order runs (u16 per sample per feature;
    /// block base offsets are closed-form, so nothing else is stored). The
    /// old flat u32 arrays cost exactly twice this.
    pub fn order_bytes(&self) -> usize {
        self.order.len() * std::mem::size_of::<u16>()
    }

    /// Value of `feature` for `sample`, off the block-major storage.
    #[cfg(test)]
    fn value(&self, feature: usize, sample: u32) -> f64 {
        let b = sample as usize / self.run_block;
        self.block_values(feature, b)[sample as usize % self.run_block]
    }
}

/// Mask extracting the sample id from a packed wide (u32) id+label word.
const ID_MASK: u32 = u32::MAX >> 1;

/// Sample-id word of the tree-growth scratch. The wide word (`u32`) packs
/// the sample's label into bit 31 so the split scan never gathers from the
/// label array; the narrow word (`u16`) holds the bare id — half the
/// partition traffic — and reads the label from the (cache-resident, at most
/// 64 KiB) label table instead. Ids are **selection-local**: they index the
/// job's gathered pool, not the global sample array.
pub(crate) trait SampleWord: Copy + Default + Send + 'static {
    /// Packs a sample id (wide words also pack the label).
    fn pack(id: u32, label: bool) -> Self;
    /// The sample id.
    fn id(self) -> usize;
    /// The sample's label as 0/1.
    fn label(self, labels: &[bool]) -> usize;
}

impl SampleWord for u32 {
    #[inline]
    fn pack(id: u32, label: bool) -> Self {
        id | ((label as u32) << 31)
    }

    #[inline]
    fn id(self) -> usize {
        (self & ID_MASK) as usize
    }

    #[inline]
    fn label(self, _labels: &[bool]) -> usize {
        (self >> 31) as usize
    }
}

impl SampleWord for u16 {
    #[inline]
    fn pack(id: u32, _label: bool) -> Self {
        id as u16
    }

    #[inline]
    fn id(self) -> usize {
        self as usize
    }

    #[inline]
    fn label(self, labels: &[bool]) -> usize {
        labels[self as usize] as usize
    }
}

/// Width of the sample-id words in the tree-growth scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IdWidth {
    /// Narrow (u16) ids whenever the tree's block selection holds fewer than
    /// 65 536 samples, wide (u32) ids otherwise. Because ids are
    /// selection-local, subset-tree refits keep narrow ids long after the
    /// full pool crosses 65 536 samples.
    #[default]
    Auto,
    /// Force u16 ids (errors when a selection exceeds 65 536 samples).
    Narrow,
    /// Force u32 ids.
    Wide,
}

/// Monotone key of `f64::total_cmp`: the unsigned order of the mapped bits
/// equals the total order of the floats (NaN-safe), so the k-way merge
/// compares run heads with one integer comparison.
#[inline]
fn total_cmp_key(v: f64) -> u64 {
    let bits = v.to_bits();
    bits ^ ((((bits as i64) >> 63) as u64) | 0x8000_0000_0000_0000)
}

/// One run's merge cursor: the head value's order key, the run's position in
/// the job's block selection and the head's index within the run. Ordering
/// is `(key, ordinal)` — the ordinal tie-break keeps equal values in
/// ascending global-id order because selected blocks are listed in ascending
/// base order.
#[derive(Debug, Clone, Copy, Default)]
struct RunCursor {
    key: u64,
    ordinal: u32,
    pos: u32,
}

impl RunCursor {
    #[inline]
    fn precedes(self, other: RunCursor) -> bool {
        self.key < other.key || (self.key == other.key && self.ordinal < other.ordinal)
    }
}

/// Pushes a cursor onto the binary min-heap.
fn heap_push(heap: &mut Vec<RunCursor>, cur: RunCursor) {
    heap.push(cur);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if heap[i].precedes(heap[parent]) {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

/// Restores the min-heap property after the root was replaced.
fn heap_sift_down(heap: &mut [RunCursor]) {
    let n = heap.len();
    let mut i = 0;
    loop {
        let l = 2 * i + 1;
        if l >= n {
            break;
        }
        let mut c = l;
        if l + 1 < n && heap[l + 1].precedes(heap[l]) {
            c = l + 1;
        }
        if heap[c].precedes(heap[i]) {
            heap.swap(i, c);
            i = c;
        } else {
            break;
        }
    }
}

/// A tree job's sample pool in selection-local layout: feature-major columns
/// over the `n` selected samples plus their labels. Single-block selections
/// borrow the training set's storage directly; multi-block selections read
/// the gather buffers of a [`LocalPool`].
struct PoolView<'a> {
    /// Feature-major columns: `cols[f * n + i]` is feature `f` of local
    /// sample `i`.
    cols: &'a [f64],
    labels: &'a [bool],
    n: usize,
    num_features: usize,
}

/// Reusable per-worker gather buffers materializing a job's selected blocks
/// into the selection-local layout (and the running base offset of each
/// selected block within it).
#[derive(Debug, Default)]
pub(crate) struct LocalPool {
    cols: Vec<f64>,
    labels: Vec<bool>,
    bases: Vec<u32>,
}

impl LocalPool {
    /// Computes the selected blocks' local base offsets and materializes the
    /// selection-local pool. A single-block selection is returned zero-copy:
    /// the block-major storage is already feature-major over that block.
    fn prepare<'a>(
        &'a mut self,
        set: &'a TrainingSet,
        blocks: &[u32],
    ) -> (PoolView<'a>, &'a [u32]) {
        self.bases.clear();
        let mut sel = 0u32;
        for &b in blocks {
            self.bases.push(sel);
            sel += set.block_len(b as usize) as u32;
        }
        let sel = sel as usize;
        let nf = set.num_features();
        if blocks.len() == 1 {
            let b = blocks[0] as usize;
            let view = PoolView {
                cols: set.block_storage(b),
                labels: set.block_labels(b),
                n: sel,
                num_features: nf,
            };
            return (view, &self.bases);
        }
        self.cols.resize(sel * nf, 0.0);
        self.labels.resize(sel, false);
        // lint: hot-path
        for (o, &b) in blocks.iter().enumerate() {
            let b = b as usize;
            let base = self.bases[o] as usize;
            let len = set.block_len(b);
            self.labels[base..base + len].copy_from_slice(set.block_labels(b));
            for f in 0..nf {
                self.cols[f * sel + base..f * sel + base + len]
                    .copy_from_slice(set.block_values(f, b));
            }
        }
        let view = PoolView {
            cols: &self.cols,
            labels: &self.labels,
            n: sel,
            num_features: nf,
        };
        (view, &self.bases)
    }
}

/// Reusable per-worker scratch for growing one tree at a time: the per-tree
/// bootstrap multiset orders (one sorted segment per feature), the stable
/// partition buffer, the bootstrap count table, the run-merge heap and the
/// candidate-feature list. One scratch serves every tree a worker fits, so
/// tree growth touches the heap only when a buffer first grows.
#[derive(Debug, Default)]
struct SplitScratch<W> {
    /// Per-feature bootstrap multiset, column-major: `order[f * m ..][..m]`
    /// lists the drawn selection-local sample ids in ascending order of
    /// feature `f` as [`SampleWord`]s, so the split scan reads labels without
    /// a second gather (wide words) or from the small label table (narrow
    /// words).
    order: Vec<W>,
    /// Stable-partition staging buffer (`m` ids).
    buf: Vec<W>,
    /// Bootstrap multiplicity per selected sample (`n` counts).
    counts: Vec<u32>,
    /// Split-side table per selected sample (1 = left), evaluated once per
    /// split so partitioning the feature segments never re-gathers the split
    /// column.
    side: Vec<u8>,
    /// Candidate feature list shuffled per node.
    features: Vec<usize>,
    /// K-way run-merge heap (one cursor per selected block).
    heap: Vec<RunCursor>,
}

impl<W: SampleWord> SplitScratch<W> {
    /// Prepares the scratch for one tree: zeroes the count table, tallies the
    /// bootstrap draws and materializes the per-feature sorted multisets by
    /// k-way-merging the selected blocks' presorted runs — O(selection) per
    /// feature, regardless of the pool size. The merge pops the minimal
    /// `(value key, block ordinal)` head, so equal values come out in
    /// ascending local (hence global) id order, reproducing a whole-pool
    /// stable sort exactly.
    fn load_tree(
        &mut self,
        set: &TrainingSet,
        blocks: &[u32],
        bases: &[u32],
        view: &PoolView<'_>,
        draws: &[u32],
    ) {
        let sel = view.n;
        let m = draws.len();
        self.counts.clear();
        self.counts.resize(sel, 0);
        for &d in draws {
            self.counts[d as usize] += 1;
        }
        self.buf.resize(m, W::default());
        self.side.clear();
        self.side.resize(sel, 0);
        // Three spare slots absorb the unconditional overflow writes of the
        // branch-light emit below.
        let need = view.num_features * m + 3;
        if self.order.len() != need {
            self.order.resize(need, W::default());
        }
        let mut k = 0usize;
        if blocks.len() == 1 {
            // Single run: relative ids are the local ids, no merge needed.
            let b = blocks[0] as usize;
            // lint: hot-path
            for f in 0..view.num_features {
                for &rel in set.block_run(f, b) {
                    let local = rel as u32;
                    let c = self.counts[rel as usize] as usize;
                    let packed = W::pack(local, view.labels[rel as usize]);
                    // Branch-light emit: bootstrap multiplicities are almost
                    // always <= 3, so three unconditional stores cover ~98%
                    // of samples without a data-dependent branch; slots
                    // written past `k + c` are overwritten by the following
                    // samples (or land in the spare tail).
                    let end = k + c;
                    self.order[k] = packed;
                    self.order[k + 1] = packed;
                    self.order[k + 2] = packed;
                    if c > 3 {
                        for slot in &mut self.order[k + 3..end] {
                            *slot = packed;
                        }
                    }
                    k = end;
                }
            }
        } else {
            // lint: hot-path
            for f in 0..view.num_features {
                let heap = &mut self.heap;
                heap.clear();
                for (o, &b) in blocks.iter().enumerate() {
                    let run = set.block_run(f, b as usize);
                    let vals = set.block_values(f, b as usize);
                    heap_push(
                        heap,
                        RunCursor {
                            key: total_cmp_key(vals[run[0] as usize]),
                            ordinal: o as u32,
                            pos: 0,
                        },
                    );
                }
                loop {
                    let cur = self.heap[0];
                    let o = cur.ordinal as usize;
                    let b = blocks[o] as usize;
                    let run = set.block_run(f, b);
                    let rel = run[cur.pos as usize] as usize;
                    let local = bases[o] + rel as u32;
                    let c = self.counts[local as usize] as usize;
                    let packed = W::pack(local, view.labels[local as usize]);
                    let end = k + c;
                    self.order[k] = packed;
                    self.order[k + 1] = packed;
                    self.order[k + 2] = packed;
                    if c > 3 {
                        for slot in &mut self.order[k + 3..end] {
                            *slot = packed;
                        }
                    }
                    k = end;
                    let pos = cur.pos as usize + 1;
                    if pos < run.len() {
                        let vals = set.block_values(f, b);
                        self.heap[0] = RunCursor {
                            key: total_cmp_key(vals[run[pos] as usize]),
                            ordinal: cur.ordinal,
                            pos: pos as u32,
                        };
                        heap_sift_down(&mut self.heap);
                    } else {
                        match self.heap.pop() {
                            Some(last) if !self.heap.is_empty() => {
                                self.heap[0] = last;
                                heap_sift_down(&mut self.heap);
                            }
                            _ => break,
                        }
                    }
                }
            }
        }
        debug_assert_eq!(k, view.num_features * m);
    }
}

/// Append-only struct-of-arrays node storage for one growing tree, mirroring
/// the [`FlatForest`] layout (DFS preorder, [`LEAF`] sentinel in `feature`).
#[derive(Debug, Default, Clone, PartialEq)]
pub(crate) struct NodeArena {
    pub(crate) feature: Vec<u32>,
    pub(crate) threshold: Vec<f64>,
    pub(crate) left: Vec<u32>,
    pub(crate) right: Vec<u32>,
    pub(crate) leaf_prob: Vec<f64>,
}

impl NodeArena {
    fn push(&mut self, feature: u32, threshold: f64, prob: f64) -> u32 {
        let idx = self.feature.len() as u32;
        self.feature.push(feature);
        self.threshold.push(threshold);
        self.left.push(0);
        self.right.push(0);
        self.leaf_prob.push(prob);
        idx
    }

    pub(crate) fn len(&self) -> usize {
        self.feature.len()
    }
}

/// The per-tree seed feeding each tree's private feature-subsampling stream
/// (the same mixing the boxed forest applies).
pub(crate) fn tree_stream_seed(seed: u64, t: usize) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(t as u64)
}

/// Validates the forest hyper-parameters against `set` and resolves them
/// into the per-tree configuration (shared by [`train_forest`] and the
/// incremental trainer).
pub(crate) fn resolve_tree_config(
    set: &TrainingSet,
    config: &RandomForestConfig,
) -> Result<DecisionTreeConfig, MlError> {
    if config.n_trees == 0 {
        return Err(MlError::InvalidParameter {
            name: "n_trees",
            reason: "the ensemble needs at least one tree".to_string(),
        });
    }
    if !(config.bootstrap_fraction > 0.0 && config.bootstrap_fraction <= 1.0) {
        return Err(MlError::InvalidParameter {
            name: "bootstrap_fraction",
            reason: format!("must lie in (0, 1], got {}", config.bootstrap_fraction),
        });
    }
    if config.max_depth == 0 {
        return Err(MlError::InvalidParameter {
            name: "max_depth",
            reason: "maximum depth must be at least 1".to_string(),
        });
    }
    let max_features = match config.max_features {
        Some(k) => {
            if k == 0 || k > set.num_features() {
                return Err(MlError::InvalidParameter {
                    name: "max_features",
                    reason: format!("must lie in [1, {}], got {k}", set.num_features()),
                });
            }
            k
        }
        None => ((set.num_features() as f64).sqrt().ceil() as usize).max(1),
    };
    Ok(DecisionTreeConfig {
        max_depth: config.max_depth,
        min_samples_split: config.min_samples_split,
        max_features: Some(max_features),
    })
}

/// One tree-fitting job: the ascending list of selected storage blocks, the
/// bootstrap draw multiset (**selection-local** sample ids, repetitions
/// allowed) and the seed of the tree's feature-subsampling stream. Local id
/// `i` addresses the `i`-th sample of the selected blocks' concatenation in
/// list order; when the selection is the whole pool in block order, local
/// and global ids coincide.
pub(crate) struct TreeJob<'a> {
    pub blocks: &'a [u32],
    pub draws: &'a [u32],
    pub seed: u64,
}

/// Fits one arena per job in parallel (per-worker scratch, deterministic
/// per-tree RNG streams), dispatching each job on its selection's sample-id
/// width. Both widths produce bit-identical arenas; the narrow path merely
/// halves the partition traffic.
pub(crate) fn fit_tree_jobs(
    set: &TrainingSet,
    tree_config: &DecisionTreeConfig,
    jobs: &[TreeJob<'_>],
    width: IdWidth,
) -> Result<Vec<NodeArena>, MlError> {
    let mut narrow = Vec::with_capacity(jobs.len());
    for job in jobs {
        let sel: usize = job
            .blocks
            .iter()
            .map(|&b| set.block_len(b as usize))
            .sum();
        narrow.push(match width {
            IdWidth::Auto => sel < NARROW_LIMIT,
            IdWidth::Wide => false,
            IdWidth::Narrow => {
                if sel > NARROW_LIMIT {
                    return Err(MlError::InvalidParameter {
                        name: "id_width",
                        reason: format!(
                            "narrow (u16) ids address at most {NARROW_LIMIT} samples, got {sel}"
                        ),
                    });
                }
                true
            }
        });
    }
    seizure_parallel::par_map_init::<_, _, MlError, _, _>(
        jobs.len(),
        1,
        || {
            Ok((
                LocalPool::default(),
                SplitScratch::<u16>::default(),
                SplitScratch::<u32>::default(),
            ))
        },
        |state, t| {
            let (pool, narrow_scratch, wide_scratch) = state;
            Ok(if narrow[t] {
                build_tree(set, tree_config, &jobs[t], pool, narrow_scratch)
            } else {
                build_tree(set, tree_config, &jobs[t], pool, wide_scratch)
            })
        },
    )
}

/// Stitches per-tree arenas into one flat forest, offsetting split children
/// by each tree's base index (leaves keep the 0/0 children the boxed
/// compiler leaves behind, preserving exact equality).
pub(crate) fn stitch_forest(num_features: usize, trees: &[&NodeArena]) -> FlatForest {
    let total: usize = trees.iter().map(|t| t.len()).sum();
    assert!(
        (total as u64) < LEAF as u64,
        "forest exceeds u32 node indexing"
    );
    let mut roots = Vec::with_capacity(trees.len());
    let mut feature = Vec::with_capacity(total);
    let mut threshold = Vec::with_capacity(total);
    let mut left = Vec::with_capacity(total);
    let mut right = Vec::with_capacity(total);
    let mut leaf_prob = Vec::with_capacity(total);
    for tree in trees {
        let base = feature.len() as u32;
        roots.push(base);
        for i in 0..tree.len() {
            let is_split = tree.feature[i] != LEAF;
            feature.push(tree.feature[i]);
            threshold.push(tree.threshold[i]);
            left.push(if is_split { tree.left[i] + base } else { 0 });
            right.push(if is_split { tree.right[i] + base } else { 0 });
            leaf_prob.push(tree.leaf_prob[i]);
        }
    }
    FlatForest::from_raw_parts(
        num_features,
        roots,
        feature,
        threshold,
        left,
        right,
        leaf_prob,
    )
}

/// Fits a random forest on a prepared [`TrainingSet`], producing the flat
/// compiled representation directly. Trees are fitted in parallel (one
/// deterministic RNG stream per tree), and the result is bit-identical to
/// `FlatForest::from_forest(&RandomForest::fit(..))` with the same
/// configuration and seed — **regardless of the set's run-block
/// partitioning**, because the k-way run merge reproduces the whole-pool
/// sort exactly. Sample ids are sized automatically ([`IdWidth::Auto`]).
///
/// The bit-identity contract holds for feature matrices without NaN values
/// (every real feature path). With NaNs, both split finders are panic-free
/// and deterministic (`f64::total_cmp` total order), but the presorted runs
/// here and the boxed path's per-node sorts may order bit-identical NaNs
/// differently within a tie group and then choose different (degenerate)
/// splits.
///
/// # Errors
///
/// Returns [`MlError::InvalidParameter`] under the same conditions as
/// [`RandomForest::fit`](crate::forest::RandomForest::fit): zero `n_trees`,
/// a bootstrap fraction outside `(0, 1]`, zero `max_depth` or an
/// out-of-range `max_features`.
pub fn train_forest(
    set: &TrainingSet,
    config: &RandomForestConfig,
    seed: u64,
) -> Result<FlatForest, MlError> {
    train_forest_with_width(set, config, seed, IdWidth::Auto)
}

/// [`train_forest`] with an explicit sample-id width — both widths produce
/// bit-identical forests; this entry point exists so the equivalence is
/// testable and the wide path remains reachable below the auto threshold.
///
/// # Errors
///
/// Same conditions as [`train_forest`], plus [`MlError::InvalidParameter`]
/// when [`IdWidth::Narrow`] cannot address the set's samples.
pub fn train_forest_with_width(
    set: &TrainingSet,
    config: &RandomForestConfig,
    seed: u64,
    width: IdWidth,
) -> Result<FlatForest, MlError> {
    let tree_config = resolve_tree_config(set, config)?;

    // Bootstrap draws replay the boxed path's shared RNG stream: all trees'
    // indices are drawn sequentially up front so the fan-out cannot perturb
    // the sequence. Every tree selects the whole pool, so the local draws
    // equal the global ids the stream produces.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sample_count = ((set.len() as f64 * config.bootstrap_fraction).round() as usize).max(1);
    let mut draws: Vec<u32> = Vec::with_capacity(config.n_trees * sample_count);
    for _ in 0..config.n_trees * sample_count {
        draws.push(rng.gen_range(0..set.len()) as u32);
    }

    let all_blocks: Vec<u32> = (0..set.num_blocks() as u32).collect();
    let jobs: Vec<TreeJob<'_>> = (0..config.n_trees)
        .map(|t| TreeJob {
            blocks: &all_blocks,
            draws: &draws[t * sample_count..(t + 1) * sample_count],
            seed: tree_stream_seed(seed, t),
        })
        .collect();
    let trees = fit_tree_jobs(set, &tree_config, &jobs, width)?;
    let refs: Vec<&NodeArena> = trees.iter().collect();
    Ok(stitch_forest(set.num_features(), &refs))
}

/// Grows one tree on the scratch and returns its arena: gathers the job's
/// selection-local pool, merges the selected runs into the per-feature
/// multisets and recurses over the splits.
fn build_tree<W: SampleWord>(
    set: &TrainingSet,
    config: &DecisionTreeConfig,
    job: &TreeJob<'_>,
    pool: &mut LocalPool,
    scratch: &mut SplitScratch<W>,
) -> NodeArena {
    let (view, bases) = pool.prepare(set, job.blocks);
    scratch.load_tree(set, job.blocks, bases, &view, job.draws);
    let mut rng = ChaCha8Rng::seed_from_u64(job.seed);
    let mut arena = NodeArena::default();
    let pos: usize = scratch.order[..job.draws.len()]
        .iter()
        .map(|&s| s.label(view.labels))
        .sum();
    build_node(
        &view,
        scratch,
        &mut arena,
        config,
        NodeSpan {
            lo: 0,
            hi: job.draws.len(),
            pos,
        },
        0,
        &mut rng,
    );
    arena
}

/// One node's multiset segment (`[lo, hi)` across every feature's sorted
/// order) plus its positive count, threaded through the recursion so no node
/// recounts its labels.
#[derive(Clone, Copy)]
struct NodeSpan {
    lo: usize,
    hi: usize,
    pos: usize,
}

/// Recursively grows the node covering `span` (the same `[lo, hi)` range
/// across every feature's sorted segment), appending to `arena` in DFS
/// preorder exactly like the boxed builder recursion. All sample ids are
/// selection-local against `view`.
fn build_node<W: SampleWord>(
    view: &PoolView<'_>,
    scratch: &mut SplitScratch<W>,
    arena: &mut NodeArena,
    config: &DecisionTreeConfig,
    span: NodeSpan,
    depth: usize,
    rng: &mut ChaCha8Rng,
) -> u32 {
    let m = scratch.buf.len();
    let NodeSpan { lo, hi, pos } = span;
    let len = hi - lo;
    let p = pos as f64 / len as f64;
    if depth >= config.max_depth || len < config.min_samples_split || p == 0.0 || p == 1.0 {
        return arena.push(LEAF, 0.0, p);
    }

    let num_features = view.num_features;
    scratch.features.clear();
    scratch.features.extend(0..num_features);
    if let Some(k) = config.max_features {
        scratch.features.shuffle(rng);
        scratch.features.truncate(k);
    }

    let parent_impurity = gini(p);
    let total_pos = pos;
    let labels = view.labels;
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)

    for &feature in &scratch.features {
        let seg = &scratch.order[feature * m + lo..feature * m + hi];
        let col = &view.cols[feature * view.n..];
        let mut left_pos = 0usize;
        let mut prev_id = seg[0];
        let mut prev = col[prev_id.id()];
        for (split_at, &next_id) in seg.iter().enumerate().skip(1) {
            left_pos += prev_id.label(labels);
            let next = col[next_id.id()];
            if prev == next {
                prev_id = next_id;
                continue; // cannot split between identical values
            }
            let left_n = split_at;
            let right_n = len - split_at;
            let p_left = left_pos as f64 / left_n as f64;
            let p_right = (total_pos - left_pos) as f64 / right_n as f64;
            let weighted =
                (left_n as f64 * gini(p_left) + right_n as f64 * gini(p_right)) / len as f64;
            let gain = parent_impurity - weighted;
            if gain > best.map_or(1e-12, |(_, _, g)| g) {
                best = Some((feature, 0.5 * (prev + next), gain));
            }
            prev_id = next_id;
            prev = next;
        }
    }

    let (feature, threshold) = match best {
        None => return arena.push(LEAF, 0.0, p),
        Some((feature, threshold, _)) => (feature, threshold),
    };

    // Evaluate the split predicate once per element into the side table,
    // counting the left side's size and positives; the boxed builder
    // re-checks emptiness on the partitioned sets because midpoint rounding
    // can push every element to one side.
    let mut left_n = 0usize;
    let mut left_pos = 0usize;
    {
        let SplitScratch { order, side, .. } = scratch;
        let col = &view.cols[feature * view.n..];
        for &s in &order[feature * m + lo..feature * m + hi] {
            let id = s.id();
            let is_left = col[id] <= threshold;
            side[id] = is_left as u8;
            left_n += is_left as usize;
            left_pos += (is_left as usize) & s.label(labels);
        }
    }
    if left_n == 0 || left_n == len {
        return arena.push(LEAF, 0.0, p);
    }
    let right_n = len - left_n;
    let right_pos = pos - left_pos;

    // A child that will immediately become a leaf never reads its sorted
    // segments (and leaves consume no RNG), so when both children are
    // guaranteed leaves the partition below is skipped entirely — the
    // dominant saving on the deepest tree level.
    let is_leaf = |child_len: usize, child_pos: usize| {
        depth + 1 >= config.max_depth
            || child_len < config.min_samples_split
            || child_pos == 0
            || child_pos == child_len
    };
    let partition_needed = !(is_leaf(left_n, left_pos) && is_leaf(right_n, right_pos));

    // Stable-partition every feature's segment by the chosen split so both
    // children keep presorted segments, staging through the scratch buffer.
    if partition_needed {
        let SplitScratch {
            order, buf, side, ..
        } = scratch;
        for f in 0..num_features {
            let seg = &mut order[f * m + lo..f * m + hi];
            buf[..len].copy_from_slice(seg);
            let mut l = 0usize;
            let mut r = left_n;
            for &s in &buf[..len] {
                // Branch-light select: the destination cursor is chosen with
                // a conditional move, so the (data-dependent) split side
                // never costs a branch misprediction.
                let is_left = side[s.id()] as usize;
                let dst = if is_left == 1 { l } else { r };
                seg[dst] = s;
                l += is_left;
                r += 1 - is_left;
            }
        }
    }

    let idx = arena.push(feature as u32, threshold, 0.0);
    let mid = lo + left_n;
    let left_span = NodeSpan {
        lo,
        hi: mid,
        pos: left_pos,
    };
    let right_span = NodeSpan {
        lo: mid,
        hi,
        pos: pos - left_pos,
    };
    let left_idx = build_node(view, scratch, arena, config, left_span, depth + 1, rng);
    let right_idx = build_node(view, scratch, arena, config, right_span, depth + 1, rng);
    arena.left[idx as usize] = left_idx;
    arena.right[idx as usize] = right_idx;
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForest;

    fn blob_dataset(n_per_class: usize, separation: f64) -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            let jitter1 = ((i * 37 + 13) % 101) as f64 / 101.0 - 0.5;
            let jitter2 = ((i * 53 + 29) % 97) as f64 / 97.0 - 0.5;
            rows.push(vec![jitter1, jitter2, ((i % 7) as f64) / 7.0]);
            labels.push(false);
            rows.push(vec![
                separation + jitter2,
                separation + jitter1,
                ((i % 5) as f64) / 5.0,
            ]);
            labels.push(true);
        }
        Dataset::new(rows, labels).unwrap()
    }

    /// Deterministic pseudo-random row-major matrix plus labels.
    fn hashed_rows(n: usize, num_features: usize) -> (Vec<f64>, Vec<bool>) {
        let mut rows = Vec::with_capacity(n * num_features);
        for i in 0..n * num_features {
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            rows.push((h >> 11) as f64 / (1u64 << 53) as f64);
        }
        let labels = (0..n).map(|i| i % 3 == 0).collect();
        (rows, labels)
    }

    #[test]
    fn training_set_validation() {
        assert!(TrainingSet::from_rows(&[], 1, &[]).is_err());
        assert!(TrainingSet::from_rows(&[1.0], 0, &[true]).is_err());
        assert!(TrainingSet::from_rows(&[1.0, 2.0, 3.0], 2, &[true, false]).is_err());
        let set = TrainingSet::from_rows(&[1.0, 2.0, 3.0, 4.0], 2, &[true, false]).unwrap();
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.num_features(), 2);
        assert_eq!(set.labels(), &[true, false]);
    }

    #[test]
    fn training_set_presorts_block_runs() {
        let rows = [3.0, 0.5, 1.0, 0.7, 2.0, 0.1];
        let set = TrainingSet::from_rows(&rows, 2, &[true, false, true]).unwrap();
        // One block: runs are the global presorted orders.
        assert_eq!(set.num_blocks(), 1);
        // Column 0 holds [3, 1, 2] -> ascending order 1, 2, 0.
        assert_eq!(set.block_run(0, 0), &[1, 2, 0]);
        // Column 1 holds [0.5, 0.7, 0.1] -> ascending order 2, 0, 1.
        assert_eq!(set.block_run(1, 0), &[2, 0, 1]);
        assert_eq!(set.value(0, 2), 2.0);
        assert_eq!(set.value(1, 0), 0.5);

        // Two-sample blocks: runs hold block-relative ids.
        let set =
            TrainingSet::from_rows_in_blocks(&rows, 2, &[true, false, true], 2).unwrap();
        assert_eq!(set.num_blocks(), 2);
        assert_eq!((set.block_len(0), set.block_len(1)), (2, 1));
        assert_eq!(set.block_run(0, 0), &[1, 0]); // block 0 col 0 holds [3, 1]
        assert_eq!(set.block_run(1, 0), &[0, 1]); // block 0 col 1 holds [0.5, 0.7]
        assert_eq!(set.block_run(0, 1), &[0]);
        assert_eq!(set.block_run(1, 1), &[0]);
        assert_eq!(set.block_values(0, 0), &[3.0, 1.0]);
        assert_eq!(set.block_values(0, 1), &[2.0]);
        assert_eq!(set.value(0, 2), 2.0);
        assert_eq!(set.value(1, 0), 0.5);
    }

    #[test]
    fn append_rows_matches_full_rebuild() {
        // Values with heavy ties across the prefix/suffix boundary exercise
        // the merge's stable tie-breaking.
        let full_rows: Vec<f64> = (0..60).map(|i| ((i * 7) % 5) as f64 * 0.5).collect();
        let full_labels: Vec<bool> = (0..30).map(|i| i % 3 == 0).collect();
        for cut in [1usize, 10, 17, 29] {
            let mut grown =
                TrainingSet::from_rows(&full_rows[..cut * 2], 2, &full_labels[..cut]).unwrap();
            grown
                .append_rows(&full_rows[cut * 2..], &full_labels[cut..])
                .unwrap();
            let rebuilt = TrainingSet::from_rows(&full_rows, 2, &full_labels).unwrap();
            assert_eq!(grown, rebuilt, "cut {cut}");
        }
    }

    #[test]
    fn append_rows_matches_full_rebuild_across_block_boundaries() {
        // Small run blocks force appends that grow a partial tail block AND
        // spill into wholly new blocks, with heavy value ties throughout.
        let full_rows: Vec<f64> = (0..60).map(|i| ((i * 7) % 5) as f64 * 0.5).collect();
        let full_labels: Vec<bool> = (0..30).map(|i| i % 3 == 0).collect();
        for rb in [1usize, 4, 7, 30] {
            for cut in [1usize, 10, 17, 29] {
                let mut grown = TrainingSet::from_rows_in_blocks(
                    &full_rows[..cut * 2],
                    2,
                    &full_labels[..cut],
                    rb,
                )
                .unwrap();
                grown
                    .append_rows(&full_rows[cut * 2..], &full_labels[cut..])
                    .unwrap();
                let rebuilt =
                    TrainingSet::from_rows_in_blocks(&full_rows, 2, &full_labels, rb).unwrap();
                assert_eq!(grown, rebuilt, "run block {rb}, cut {cut}");
            }
        }
    }

    #[test]
    fn append_rows_validation() {
        let mut set = TrainingSet::from_rows(&[1.0, 2.0], 2, &[true]).unwrap();
        assert!(set.append_rows(&[], &[]).is_err());
        assert!(set.append_rows(&[1.0], &[true]).is_err());
        assert!(set.append_rows(&[1.0, 2.0, 3.0], &[true]).is_err());
        set.append_rows(&[3.0, 4.0], &[false]).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.labels(), &[true, false]);
    }

    #[test]
    fn run_block_partitioning_is_invisible_to_training() {
        // The k-way run merge must reproduce the whole-pool sort exactly, so
        // the same data trains bit-identically under any block partitioning
        // (including single-sample blocks, the deepest merge fan-in).
        let data = blob_dataset(40, 1.5);
        let num_features = data.num_features();
        let mut rows = Vec::with_capacity(data.len() * num_features);
        for row in data.features() {
            rows.extend_from_slice(row);
        }
        let config = RandomForestConfig {
            n_trees: 7,
            max_depth: 6,
            ..RandomForestConfig::default()
        };
        let whole = TrainingSet::from_dataset(&data).unwrap();
        let reference = train_forest(&whole, &config, 11).unwrap();
        for rb in [1usize, 7, 16, 80, 128] {
            let blocked =
                TrainingSet::from_rows_in_blocks(&rows, num_features, data.labels(), rb).unwrap();
            assert_eq!(
                train_forest(&blocked, &config, 11).unwrap(),
                reference,
                "run block {rb}"
            );
            let wide =
                train_forest_with_width(&blocked, &config, 11, IdWidth::Wide).unwrap();
            assert_eq!(wide, reference, "run block {rb} (wide)");
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn from_columns_rebuild_cost_scales_with_block_count() {
        // Satellite: the persist load path must sort per block, not one
        // O(n log n) global sort per feature. With 256-sample blocks over
        // 32 768 samples the comparison count must drop well below the
        // global sort's (log2 256 = 8 vs log2 32768 = 15).
        let n = 32_768usize;
        let nf = 3usize;
        let (rows, labels) = hashed_rows(n, nf);
        let mut columns = vec![0.0; n * nf];
        for (i, row) in rows.chunks_exact(nf).enumerate() {
            for (f, &x) in row.iter().enumerate() {
                columns[f * n + i] = x;
            }
        }
        let _ = take_run_sort_comparisons();
        let whole =
            TrainingSet::from_columns(columns.clone(), nf, labels.clone(), MAX_RUN_BLOCK).unwrap();
        let whole_cmps = take_run_sort_comparisons();
        let blocked = TrainingSet::from_columns(columns, nf, labels, 256).unwrap();
        let blocked_cmps = take_run_sort_comparisons();
        assert!(whole_cmps > 0 && blocked_cmps > 0);
        assert!(
            blocked_cmps * 3 < whole_cmps * 2,
            "blocked rebuild cost {blocked_cmps} not clearly below global sort cost {whole_cmps}"
        );
        assert_eq!(whole.len(), blocked.len());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn append_cost_scales_with_batch_not_pool() {
        // Appending a small batch must only sort/merge the touched tail
        // block — never re-merge the 16 384-sample prefix.
        let n = 16_384usize;
        let nf = 3usize;
        let batch = 64usize;
        let (rows, labels) = hashed_rows(n + batch, nf);
        let mut set =
            TrainingSet::from_rows_in_blocks(&rows[..n * nf], nf, &labels[..n], 128).unwrap();
        let _ = take_run_sort_comparisons();
        set.append_rows(&rows[n * nf..], &labels[n..]).unwrap();
        let append_cmps = take_run_sort_comparisons();
        // Generous bound: per feature, sorting the batch (<= 16 per element)
        // plus merging through at most two touched blocks.
        let bound = (nf * (batch * 16 + 2 * 128)) as u64;
        assert!(
            append_cmps < bound,
            "append cost {append_cmps} exceeds touched-block bound {bound}"
        );
        let rebuilt = TrainingSet::from_rows_in_blocks(&rows, nf, &labels, 128).unwrap();
        assert_eq!(set, rebuilt);
    }

    #[test]
    fn engine_matches_boxed_forest_exactly() {
        let data = blob_dataset(40, 1.5);
        let config = RandomForestConfig {
            n_trees: 13,
            max_depth: 7,
            ..RandomForestConfig::default()
        };
        for seed in [0, 1, 7, 42] {
            let boxed = RandomForest::fit(&data, &config, seed).unwrap();
            let reference = FlatForest::from_forest(&boxed);
            let set = TrainingSet::from_dataset(&data).unwrap();
            let engine = train_forest(&set, &config, seed).unwrap();
            assert_eq!(engine, reference, "seed {seed}");
        }
    }

    #[test]
    fn narrow_and_wide_ids_produce_identical_forests() {
        let data = blob_dataset(35, 1.2);
        let set = TrainingSet::from_dataset(&data).unwrap();
        let config = RandomForestConfig {
            n_trees: 9,
            max_depth: 6,
            ..RandomForestConfig::default()
        };
        for seed in [0, 5, 11] {
            let narrow = train_forest_with_width(&set, &config, seed, IdWidth::Narrow).unwrap();
            let wide = train_forest_with_width(&set, &config, seed, IdWidth::Wide).unwrap();
            assert_eq!(narrow, wide, "seed {seed}");
            // Auto picks the narrow path here (70 samples).
            assert_eq!(train_forest(&set, &config, seed).unwrap(), narrow);
        }
    }

    #[test]
    fn engine_handles_duplicate_feature_values() {
        // Constant column plus a discrete column with heavy ties.
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![1.0, (i % 3) as f64, (i % 5) as f64])
            .collect();
        let labels: Vec<bool> = (0..30).map(|i| i % 3 == 0).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let config = RandomForestConfig {
            n_trees: 9,
            max_depth: 5,
            ..RandomForestConfig::default()
        };
        let reference = FlatForest::from_forest(&RandomForest::fit(&data, &config, 3).unwrap());
        let set = TrainingSet::from_dataset(&data).unwrap();
        assert_eq!(train_forest(&set, &config, 3).unwrap(), reference);
    }

    #[test]
    fn engine_rejects_invalid_parameters() {
        let set = TrainingSet::from_rows(&[1.0, 2.0], 1, &[true, false]).unwrap();
        let bad = |config: RandomForestConfig| train_forest(&set, &config, 0).is_err();
        assert!(bad(RandomForestConfig {
            n_trees: 0,
            ..RandomForestConfig::default()
        }));
        assert!(bad(RandomForestConfig {
            bootstrap_fraction: 0.0,
            ..RandomForestConfig::default()
        }));
        assert!(bad(RandomForestConfig {
            bootstrap_fraction: 1.5,
            ..RandomForestConfig::default()
        }));
        assert!(bad(RandomForestConfig {
            max_depth: 0,
            ..RandomForestConfig::default()
        }));
        assert!(bad(RandomForestConfig {
            max_features: Some(0),
            ..RandomForestConfig::default()
        }));
        assert!(bad(RandomForestConfig {
            max_features: Some(9),
            ..RandomForestConfig::default()
        }));
    }

    #[test]
    fn pure_training_set_yields_single_leaves() {
        let set = TrainingSet::from_rows(&[1.0, 2.0, 3.0], 1, &[true, true, true]).unwrap();
        let config = RandomForestConfig {
            n_trees: 4,
            ..RandomForestConfig::default()
        };
        let forest = train_forest(&set, &config, 0).unwrap();
        assert_eq!(forest.num_nodes(), 4);
        assert_eq!(forest.predict_proba(&[9.0]), 1.0);
    }

    #[test]
    fn nan_features_train_without_panicking() {
        // A column of NaNs cannot anchor a usable split; training must fall
        // back to the clean column instead of panicking mid-retrain.
        let rows: Vec<f64> = (0..40)
            .flat_map(|i| [if i % 4 == 0 { f64::NAN } else { 0.5 }, i as f64])
            .collect();
        let labels: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let set = TrainingSet::from_rows(&rows, 2, &labels).unwrap();
        let config = RandomForestConfig {
            n_trees: 5,
            max_depth: 4,
            max_features: Some(2),
            ..RandomForestConfig::default()
        };
        let forest = train_forest(&set, &config, 1).unwrap();
        assert!(forest.predict(&[0.5, 39.0]));
        assert!(!forest.predict(&[0.5, 0.0]));

        // NaNs must also merge deterministically across block runs: the
        // blocked set trains identically to the single-block set because the
        // merge key preserves total_cmp order bit for bit.
        let blocked = TrainingSet::from_rows_in_blocks(&rows, 2, &labels, 8).unwrap();
        assert_eq!(train_forest(&blocked, &config, 1).unwrap(), forest);
    }
}
