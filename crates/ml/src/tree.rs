//! CART-style decision trees with Gini impurity.
//!
//! The trees support per-split feature subsampling and bootstrap-weighted
//! training so they can serve as the base learners of the random forest used
//! by the paper's real-time detector.

use crate::dataset::Dataset;
use crate::error::MlError;
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyper-parameters of a [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth (the root is depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of features considered at each split; `None` uses all features.
    pub max_features: Option<usize>,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Node {
    Leaf {
        /// Fraction of positive samples that reached this leaf.
        probability: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted binary decision tree.
///
/// # Example
///
/// ```
/// use seizure_ml::{Dataset, DecisionTree, DecisionTreeConfig};
///
/// # fn main() -> Result<(), seizure_ml::MlError> {
/// let data = Dataset::new(
///     vec![vec![0.0], vec![0.2], vec![0.9], vec![1.0]],
///     vec![false, false, true, true],
/// )?;
/// let tree = DecisionTree::fit(&data, &DecisionTreeConfig::default(), 1)?;
/// assert_eq!(tree.predict(&[0.1]), false);
/// assert_eq!(tree.predict(&[0.95]), true);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    root: Node,
    num_features: usize,
}

impl DecisionTree {
    /// Fits a tree to `data` with the given configuration. `seed` controls the
    /// feature subsampling (only relevant when `max_features` is set).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] for a zero `max_depth` or an
    /// out-of-range `max_features`.
    pub fn fit(data: &Dataset, config: &DecisionTreeConfig, seed: u64) -> Result<Self, MlError> {
        Self::fit_with_indices(data, &(0..data.len()).collect::<Vec<_>>(), config, seed)
    }

    /// Fits a tree on the samples selected by `indices` (repetitions allowed,
    /// which is how the forest implements bootstrap sampling).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] for invalid hyper-parameters and
    /// [`MlError::DimensionMismatch`] for out-of-range indices or an empty
    /// selection.
    pub fn fit_with_indices(
        data: &Dataset,
        indices: &[usize],
        config: &DecisionTreeConfig,
        seed: u64,
    ) -> Result<Self, MlError> {
        if config.max_depth == 0 {
            return Err(MlError::InvalidParameter {
                name: "max_depth",
                reason: "maximum depth must be at least 1".to_string(),
            });
        }
        if let Some(k) = config.max_features {
            if k == 0 || k > data.num_features() {
                return Err(MlError::InvalidParameter {
                    name: "max_features",
                    reason: format!("must lie in [1, {}], got {k}", data.num_features()),
                });
            }
        }
        if indices.is_empty() {
            return Err(MlError::DimensionMismatch {
                detail: "cannot fit a tree on an empty sample selection".to_string(),
            });
        }
        if let Some(&bad) = indices.iter().find(|&&i| i >= data.len()) {
            return Err(MlError::DimensionMismatch {
                detail: format!("sample index {bad} out of range for {} samples", data.len()),
            });
        }
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let root = build_node(data, indices, config, 0, &mut rng);
        Ok(Self {
            root,
            num_features: data.num_features(),
        })
    }

    /// Number of features the tree was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Root node, used by the flat-forest compiler.
    pub(crate) fn root(&self) -> &Node {
        &self.root
    }

    /// Probability that `sample` belongs to the positive (seizure) class.
    ///
    /// # Panics
    ///
    /// Panics if the sample has fewer features than the training data.
    pub fn predict_proba(&self, sample: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { probability } => return *probability,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if sample[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Predicted class of `sample` with a 0.5 probability threshold.
    pub fn predict(&self, sample: &[f64]) -> bool {
        self.predict_proba(sample) >= 0.5
    }

    /// Depth of the fitted tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth_of(left).max(depth_of(right)),
            }
        }
        depth_of(&self.root)
    }

    /// Number of leaves in the fitted tree.
    pub fn num_leaves(&self) -> usize {
        fn leaves_of(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => leaves_of(left) + leaves_of(right),
            }
        }
        leaves_of(&self.root)
    }
}

use rand::SeedableRng;

fn positive_fraction(data: &Dataset, indices: &[usize]) -> f64 {
    let positives = indices.iter().filter(|&&i| data.labels()[i]).count();
    positives as f64 / indices.len() as f64
}

/// Gini impurity of a binary class mixture; shared with the scratch-backed
/// training engine so both split finders apply identical arithmetic.
pub(crate) fn gini(p: f64) -> f64 {
    2.0 * p * (1.0 - p)
}

fn build_node<R: Rng>(
    data: &Dataset,
    indices: &[usize],
    config: &DecisionTreeConfig,
    depth: usize,
    rng: &mut R,
) -> Node {
    let p = positive_fraction(data, indices);
    if depth >= config.max_depth || indices.len() < config.min_samples_split || p == 0.0 || p == 1.0
    {
        return Node::Leaf { probability: p };
    }

    let num_features = data.num_features();
    let mut candidate_features: Vec<usize> = (0..num_features).collect();
    if let Some(k) = config.max_features {
        candidate_features.shuffle(rng);
        candidate_features.truncate(k);
    }

    let parent_impurity = gini(p);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)

    for &feature in &candidate_features {
        // Sort the samples by this feature and scan candidate thresholds.
        // `total_cmp` gives a NaN-safe total order (NaNs sort to the ends and
        // cannot scramble the sort): a NaN feature value degrades the split
        // it would anchor into a leaf instead of corrupting the ordering.
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted
            .sort_by(|&a, &b| data.features()[a][feature].total_cmp(&data.features()[b][feature]));
        let total_pos = sorted.iter().filter(|&&i| data.labels()[i]).count();
        let n = sorted.len();
        let mut left_pos = 0usize;
        for split_at in 1..n {
            if data.labels()[sorted[split_at - 1]] {
                left_pos += 1;
            }
            let prev = data.features()[sorted[split_at - 1]][feature];
            let next = data.features()[sorted[split_at]][feature];
            if prev == next {
                continue; // cannot split between identical values
            }
            let left_n = split_at;
            let right_n = n - split_at;
            let p_left = left_pos as f64 / left_n as f64;
            let p_right = (total_pos - left_pos) as f64 / right_n as f64;
            let weighted =
                (left_n as f64 * gini(p_left) + right_n as f64 * gini(p_right)) / n as f64;
            let gain = parent_impurity - weighted;
            if gain > best.map_or(1e-12, |(_, _, g)| g) {
                best = Some((feature, 0.5 * (prev + next), gain));
            }
        }
    }

    match best {
        None => Node::Leaf { probability: p },
        Some((feature, threshold, _)) => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                .iter()
                .partition(|&&i| data.features()[i][feature] <= threshold);
            if left_idx.is_empty() || right_idx.is_empty() {
                return Node::Leaf { probability: p };
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(build_node(data, &left_idx, config, depth + 1, rng)),
                right: Box::new(build_node(data, &right_idx, config, depth + 1, rng)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An AND-style pattern (positive only when both features are high) that
    /// needs depth >= 2 to classify perfectly but is learnable greedily.
    fn and_dataset() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            let jitter = i as f64 * 0.01;
            rows.push(vec![0.0 + jitter, 0.0 + jitter]);
            labels.push(false);
            rows.push(vec![0.0 + jitter, 1.0 - jitter]);
            labels.push(false);
            rows.push(vec![1.0 - jitter, 0.0 + jitter]);
            labels.push(false);
            rows.push(vec![1.0 - jitter, 1.0 - jitter]);
            labels.push(true);
        }
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn fits_linearly_separable_data_perfectly() {
        let data = Dataset::new(
            (0..20).map(|i| vec![i as f64]).collect(),
            (0..20).map(|i| i >= 10).collect(),
        )
        .unwrap();
        let tree = DecisionTree::fit(&data, &DecisionTreeConfig::default(), 0).unwrap();
        for (row, &label) in data.features().iter().zip(data.labels()) {
            assert_eq!(tree.predict(row), label);
        }
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.num_leaves(), 2);
    }

    #[test]
    fn learns_and_pattern_with_sufficient_depth() {
        let data = and_dataset();
        let tree = DecisionTree::fit(&data, &DecisionTreeConfig::default(), 0).unwrap();
        for (row, &label) in data.features().iter().zip(data.labels()) {
            assert_eq!(tree.predict(row), label);
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn max_depth_one_cannot_learn_and_pattern() {
        let data = and_dataset();
        let config = DecisionTreeConfig {
            max_depth: 1,
            ..DecisionTreeConfig::default()
        };
        let tree = DecisionTree::fit(&data, &config, 0).unwrap();
        let errors = data
            .features()
            .iter()
            .zip(data.labels())
            .filter(|(row, &label)| tree.predict(row) != label)
            .count();
        assert!(errors > 0);
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn pure_dataset_yields_single_leaf() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0]], vec![true, true]).unwrap();
        let tree = DecisionTree::fit(&data, &DecisionTreeConfig::default(), 0).unwrap();
        assert_eq!(tree.num_leaves(), 1);
        assert!(tree.predict(&[100.0]));
        assert_eq!(tree.predict_proba(&[0.0]), 1.0);
    }

    #[test]
    fn invalid_hyper_parameters_are_rejected() {
        let data = Dataset::new(vec![vec![1.0]], vec![true]).unwrap();
        let bad_depth = DecisionTreeConfig {
            max_depth: 0,
            ..DecisionTreeConfig::default()
        };
        assert!(DecisionTree::fit(&data, &bad_depth, 0).is_err());
        let bad_features = DecisionTreeConfig {
            max_features: Some(5),
            ..DecisionTreeConfig::default()
        };
        assert!(DecisionTree::fit(&data, &bad_features, 0).is_err());
        let zero_features = DecisionTreeConfig {
            max_features: Some(0),
            ..DecisionTreeConfig::default()
        };
        assert!(DecisionTree::fit(&data, &zero_features, 0).is_err());
    }

    #[test]
    fn fit_with_indices_validates_selection() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0]], vec![true, false]).unwrap();
        let config = DecisionTreeConfig::default();
        assert!(DecisionTree::fit_with_indices(&data, &[], &config, 0).is_err());
        assert!(DecisionTree::fit_with_indices(&data, &[5], &config, 0).is_err());
        // Repeated indices (bootstrap style) are allowed.
        assert!(DecisionTree::fit_with_indices(&data, &[0, 0, 1], &config, 0).is_ok());
    }

    #[test]
    fn probabilities_reflect_class_mixture_at_leaves() {
        // Identical feature values with mixed labels cannot be split.
        let data = Dataset::new(
            vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]],
            vec![true, true, true, false],
        )
        .unwrap();
        let tree = DecisionTree::fit(&data, &DecisionTreeConfig::default(), 0).unwrap();
        assert!((tree.predict_proba(&[1.0]) - 0.75).abs() < 1e-12);
        assert!(tree.predict(&[1.0]));
    }

    #[test]
    fn nan_feature_values_degrade_gracefully() {
        // One corrupted feature column (NaNs) next to an informative one:
        // fitting must not panic and must still learn from the clean column.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let nan_or_value = if i % 3 == 0 { f64::NAN } else { i as f64 };
            rows.push(vec![nan_or_value, i as f64]);
            labels.push(i >= 10);
        }
        let data = Dataset::new(rows, labels).unwrap();
        let tree = DecisionTree::fit(&data, &DecisionTreeConfig::default(), 0).unwrap();
        assert!(tree.predict(&[f64::NAN, 19.0]));
        assert!(!tree.predict(&[f64::NAN, 0.0]));
    }

    #[test]
    fn feature_subsampling_is_deterministic_in_seed() {
        let data = and_dataset();
        let config = DecisionTreeConfig {
            max_features: Some(1),
            ..DecisionTreeConfig::default()
        };
        let a = DecisionTree::fit(&data, &config, 42).unwrap();
        let b = DecisionTree::fit(&data, &config, 42).unwrap();
        assert_eq!(a, b);
    }
}
