//! Labeled design-matrix container.

use crate::error::MlError;

/// A binary-classification dataset: one feature vector per sample and a
/// boolean label (`true` = seizure window, `false` = seizure-free window).
///
/// # Example
///
/// ```
/// use seizure_ml::Dataset;
///
/// # fn main() -> Result<(), seizure_ml::MlError> {
/// let data = Dataset::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![false, true])?;
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.num_features(), 2);
/// assert_eq!(data.num_positive(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<bool>,
}

impl Dataset {
    /// Creates a dataset from feature rows and labels.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidDataset`] if the dataset is empty, the label
    /// count differs from the row count, or rows have inconsistent lengths.
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<bool>) -> Result<Self, MlError> {
        if features.is_empty() {
            return Err(MlError::InvalidDataset {
                detail: "dataset must contain at least one sample".to_string(),
            });
        }
        if features.len() != labels.len() {
            return Err(MlError::InvalidDataset {
                detail: format!(
                    "{} feature rows but {} labels",
                    features.len(),
                    labels.len()
                ),
            });
        }
        let width = features[0].len();
        if width == 0 {
            return Err(MlError::InvalidDataset {
                detail: "feature rows must contain at least one feature".to_string(),
            });
        }
        if let Some(bad) = features.iter().find(|r| r.len() != width) {
            return Err(MlError::InvalidDataset {
                detail: format!(
                    "inconsistent row length: expected {width}, found {}",
                    bad.len()
                ),
            });
        }
        Ok(Self { features, labels })
    }

    /// Builds an empty dataset accumulator with no validation; rows are added
    /// with [`Dataset::push`]. Useful when assembling training sets
    /// incrementally.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Appends one labeled sample.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidDataset`] if the row length differs from the
    /// existing rows.
    pub fn push(&mut self, row: Vec<f64>, label: bool) -> Result<(), MlError> {
        if let Some(first) = self.features.first() {
            if row.len() != first.len() {
                return Err(MlError::InvalidDataset {
                    detail: format!(
                        "inconsistent row length: expected {}, found {}",
                        first.len(),
                        row.len()
                    ),
                });
            }
        } else if row.is_empty() {
            return Err(MlError::InvalidDataset {
                detail: "feature rows must contain at least one feature".to_string(),
            });
        }
        self.features.push(row);
        self.labels.push(label);
        Ok(())
    }

    /// Appends all samples of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidDataset`] if the feature widths differ.
    pub fn extend(&mut self, other: &Dataset) -> Result<(), MlError> {
        for (row, &label) in other.features.iter().zip(other.labels.iter()) {
            self.push(row.clone(), label)?;
        }
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Returns `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of features per sample (0 for an empty accumulator).
    pub fn num_features(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Feature rows.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Labels, aligned with [`Dataset::features`].
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Number of positive (seizure) samples.
    pub fn num_positive(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Number of negative (seizure-free) samples.
    pub fn num_negative(&self) -> usize {
        self.len() - self.num_positive()
    }

    /// Returns the sub-dataset at the given sample indices.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if any index is out of range or
    /// the selection is empty.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset, MlError> {
        if indices.is_empty() {
            return Err(MlError::DimensionMismatch {
                detail: "cannot build an empty subset".to_string(),
            });
        }
        let mut features = Vec::with_capacity(indices.len());
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(MlError::DimensionMismatch {
                    detail: format!("sample index {i} out of range for {} samples", self.len()),
                });
            }
            features.push(self.features[i].clone());
            labels.push(self.labels[i]);
        }
        Dataset::new(features, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Dataset::new(vec![], vec![]).is_err());
        assert!(Dataset::new(vec![vec![1.0]], vec![]).is_err());
        assert!(Dataset::new(vec![vec![]], vec![true]).is_err());
        assert!(Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![true, false]).is_err());
        assert!(Dataset::new(vec![vec![1.0], vec![2.0]], vec![true, false]).is_ok());
    }

    #[test]
    fn counts_and_accessors() {
        let d = Dataset::new(
            vec![vec![1.0, 0.0], vec![2.0, 1.0], vec![3.0, 0.0]],
            vec![true, false, true],
        )
        .unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.num_positive(), 2);
        assert_eq!(d.num_negative(), 1);
        assert_eq!(d.features()[1][0], 2.0);
        assert!(d.labels()[2]);
        assert!(!d.is_empty());
    }

    #[test]
    fn push_and_extend() {
        let mut d = Dataset::empty();
        assert!(d.is_empty());
        d.push(vec![1.0, 2.0], true).unwrap();
        assert!(d.push(vec![1.0], false).is_err());
        d.push(vec![3.0, 4.0], false).unwrap();
        assert_eq!(d.len(), 2);

        let other = Dataset::new(vec![vec![5.0, 6.0]], vec![true]).unwrap();
        d.extend(&other).unwrap();
        assert_eq!(d.len(), 3);

        let incompatible = Dataset::new(vec![vec![1.0]], vec![true]).unwrap();
        assert!(d.extend(&incompatible).is_err());
    }

    #[test]
    fn push_into_empty_rejects_empty_row() {
        let mut d = Dataset::empty();
        assert!(d.push(vec![], true).is_err());
    }

    #[test]
    fn subset_selects_rows() {
        let d = Dataset::new(
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![true, false, true],
        )
        .unwrap();
        let s = d.subset(&[2, 0]).unwrap();
        assert_eq!(s.features()[0][0], 3.0);
        assert_eq!(s.labels(), &[true, true]);
        assert!(d.subset(&[]).is_err());
        assert!(d.subset(&[9]).is_err());
    }
}
