//! Classification metrics.
//!
//! The paper evaluates the real-time detector with sensitivity, specificity and
//! their geometric mean (Fig. 4); those quantities are derived here from a
//! binary confusion matrix.

use crate::error::MlError;

/// A binary confusion matrix (positive class = seizure window).
///
/// # Example
///
/// ```
/// use seizure_ml::ConfusionMatrix;
///
/// # fn main() -> Result<(), seizure_ml::MlError> {
/// let predictions = vec![true, true, false, false, true];
/// let truth = vec![true, false, false, true, true];
/// let cm = ConfusionMatrix::from_predictions(&predictions, &truth)?;
/// assert_eq!(cm.true_positives(), 2);
/// assert_eq!(cm.false_negatives(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    tp: usize,
    tn: usize,
    fp: usize,
    fn_: usize,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from raw counts.
    pub fn from_counts(tp: usize, tn: usize, fp: usize, fn_: usize) -> Self {
        Self { tp, tn, fp, fn_ }
    }

    /// Builds a confusion matrix by comparing predictions against ground truth.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if the slices have different
    /// lengths or are empty.
    pub fn from_predictions(predictions: &[bool], truth: &[bool]) -> Result<Self, MlError> {
        if predictions.len() != truth.len() || predictions.is_empty() {
            return Err(MlError::DimensionMismatch {
                detail: format!(
                    "predictions ({}) and ground truth ({}) must be non-empty and equally long",
                    predictions.len(),
                    truth.len()
                ),
            });
        }
        let mut cm = ConfusionMatrix::default();
        for (&p, &t) in predictions.iter().zip(truth.iter()) {
            cm.record(p, t);
        }
        Ok(cm)
    }

    /// Records one (prediction, truth) pair.
    pub fn record(&mut self, prediction: bool, truth: bool) {
        match (prediction, truth) {
            (true, true) => self.tp += 1,
            (false, false) => self.tn += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Merges another confusion matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.tn += other.tn;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// Number of true positives.
    pub fn true_positives(&self) -> usize {
        self.tp
    }

    /// Number of true negatives.
    pub fn true_negatives(&self) -> usize {
        self.tn
    }

    /// Number of false positives.
    pub fn false_positives(&self) -> usize {
        self.fp
    }

    /// Number of false negatives.
    pub fn false_negatives(&self) -> usize {
        self.fn_
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Sensitivity (recall of the seizure class): `TP / (TP + FN)`.
    /// Returns 0 when no positive samples were seen.
    pub fn sensitivity(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Specificity (recall of the seizure-free class): `TN / (TN + FP)`.
    /// Returns 0 when no negative samples were seen.
    pub fn specificity(&self) -> f64 {
        ratio(self.tn, self.tn + self.fp)
    }

    /// Precision: `TP / (TP + FP)`; 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Accuracy: fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// F1 score (harmonic mean of precision and sensitivity).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.sensitivity();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Geometric mean of sensitivity and specificity — the summary metric the
    /// paper reports in Fig. 4.
    pub fn geometric_mean(&self) -> f64 {
        (self.sensitivity() * self.specificity()).sqrt()
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Geometric mean of a slice of non-negative values (used to aggregate
/// per-subject geometric means across the cohort, following Fleming & Wallace).
///
/// # Errors
///
/// Returns [`MlError::InvalidParameter`] if the slice is empty or contains a
/// negative/NaN value.
pub fn geometric_mean(values: &[f64]) -> Result<f64, MlError> {
    if values.is_empty() {
        return Err(MlError::InvalidParameter {
            name: "values",
            reason: "geometric mean of an empty slice is undefined".to_string(),
        });
    }
    let mut log_sum = 0.0;
    for &v in values {
        if v < 0.0 || v.is_nan() {
            return Err(MlError::InvalidParameter {
                name: "values",
                reason: format!("geometric mean requires non-negative values, got {v}"),
            });
        }
        log_sum += v.max(1e-12).ln();
    }
    Ok((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_predictions_counts_correctly() {
        let cm = ConfusionMatrix::from_predictions(
            &[true, false, true, false, true, true],
            &[true, false, false, true, true, false],
        )
        .unwrap();
        assert_eq!(cm.true_positives(), 2);
        assert_eq!(cm.true_negatives(), 1);
        assert_eq!(cm.false_positives(), 2);
        assert_eq!(cm.false_negatives(), 1);
        assert_eq!(cm.total(), 6);
    }

    #[test]
    fn from_predictions_validates_inputs() {
        assert!(ConfusionMatrix::from_predictions(&[true], &[]).is_err());
        assert!(ConfusionMatrix::from_predictions(&[], &[]).is_err());
    }

    #[test]
    fn perfect_classifier_metrics() {
        let cm = ConfusionMatrix::from_counts(10, 20, 0, 0);
        assert_eq!(cm.sensitivity(), 1.0);
        assert_eq!(cm.specificity(), 1.0);
        assert_eq!(cm.geometric_mean(), 1.0);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.f1(), 1.0);
    }

    #[test]
    fn degenerate_classifier_metrics() {
        // Always predicting negative: zero sensitivity, full specificity.
        let cm = ConfusionMatrix::from_counts(0, 30, 0, 10);
        assert_eq!(cm.sensitivity(), 0.0);
        assert_eq!(cm.specificity(), 1.0);
        assert_eq!(cm.geometric_mean(), 0.0);
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.precision(), 0.0);
    }

    #[test]
    fn empty_matrix_yields_zero_ratios() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.sensitivity(), 0.0);
        assert_eq!(cm.specificity(), 0.0);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut a = ConfusionMatrix::from_counts(1, 2, 3, 4);
        let b = ConfusionMatrix::from_counts(10, 20, 30, 40);
        a.merge(&b);
        assert_eq!(a.true_positives(), 11);
        assert_eq!(a.false_negatives(), 44);
        assert_eq!(a.total(), 110);
    }

    #[test]
    fn known_sensitivity_specificity_values() {
        let cm = ConfusionMatrix::from_counts(80, 90, 10, 20);
        assert!((cm.sensitivity() - 0.8).abs() < 1e-12);
        assert!((cm.specificity() - 0.9).abs() < 1e-12);
        assert!((cm.geometric_mean() - (0.72f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_helper() {
        assert!((geometric_mean(&[0.25, 1.0]).unwrap() - 0.5).abs() < 1e-12);
        assert!((geometric_mean(&[0.9; 5]).unwrap() - 0.9).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_err());
        assert!(geometric_mean(&[-0.1]).is_err());
        assert!(geometric_mean(&[f64::NAN]).is_err());
        assert!(geometric_mean(&[0.0, 1.0]).unwrap() < 1e-3);
    }
}
