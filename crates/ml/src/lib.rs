//! # seizure-ml
//!
//! Machine-learning substrate for the self-learning seizure detection
//! reproduction.
//!
//! The paper's real-time detector is a random forest (following Sopic et al.,
//! e-Glass, ISCAS 2018), and its related work compares against unsupervised
//! k-means / k-medoids detection (Smart & Chen, CIBCB 2015). Everything needed
//! for those experiments is implemented here from scratch:
//!
//! * [`tree`] — CART-style decision trees with Gini impurity,
//! * [`forest`] — bagged random forests with per-split feature subsampling,
//! * [`training`] — the parallel, scratch-backed training engine: presorted
//!   feature columns, arena-built trees, bit-identical to the boxed path,
//! * [`incremental`] — the stateful retraining engine for growing training
//!   sets: appends merge into the presorted columns and only the trees whose
//!   bootstrap pools were touched are refitted,
//! * [`linear`] — a logistic-regression baseline,
//! * [`kmeans`] / [`kmedoids`] — unsupervised clustering baselines,
//! * [`persist`] — versioned binary snapshots of forests, training sets and
//!   incremental trainers, so a wearable resumes its personalized pool
//!   across power cycles,
//! * [`metrics`] — confusion matrices, sensitivity, specificity and the
//!   geometric mean used by the paper's Fig. 4,
//! * [`split`] — train/test and leave-one-group-out splitting utilities,
//! * [`dataset`] — the labeled design-matrix container shared by all of them.
//!
//! # Example
//!
//! ```
//! use seizure_ml::dataset::Dataset;
//! use seizure_ml::forest::{RandomForest, RandomForestConfig};
//! use seizure_ml::metrics::ConfusionMatrix;
//!
//! # fn main() -> Result<(), seizure_ml::MlError> {
//! // A trivially separable dataset.
//! let mut rows = Vec::new();
//! let mut labels = Vec::new();
//! for i in 0..40 {
//!     let x = i as f64 / 10.0;
//!     rows.push(vec![x, (i % 5) as f64]);
//!     labels.push(x > 2.0);
//! }
//! let data = Dataset::new(rows, labels)?;
//! let forest = RandomForest::fit(&data, &RandomForestConfig::default(), 7)?;
//! let predictions = forest.predict_batch(data.features());
//! let cm = ConfusionMatrix::from_predictions(&predictions, data.labels())?;
//! assert!(cm.accuracy() > 0.9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod error;
pub mod flat;
pub mod forest;
pub mod incremental;
pub mod kmeans;
pub mod kmedoids;
pub mod linear;
pub mod metrics;
pub mod persist;
pub mod split;
pub mod training;
pub mod tree;

pub use dataset::Dataset;
pub use error::MlError;
pub use flat::FlatForest;
pub use forest::{RandomForest, RandomForestConfig};
pub use incremental::{IncrementalTrainer, IncrementalTrainerConfig};
pub use metrics::ConfusionMatrix;
pub use persist::PersistError;
pub use training::{train_forest, train_forest_with_width, IdWidth, TrainingSet};
pub use tree::{DecisionTree, DecisionTreeConfig};
