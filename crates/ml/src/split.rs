//! Dataset splitting utilities.
//!
//! The paper trains the real-time detector on personalized, balanced training
//! sets of 2–5 seizures from the tested subject and evaluates on the remaining
//! data; the leave-one-group-out iterator implements that protocol when groups
//! are seizure identities.

use crate::dataset::Dataset;
use crate::error::MlError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Splits a dataset into a training and a test subset with the given training
/// fraction, shuffling deterministically with `seed`.
///
/// # Errors
///
/// Returns [`MlError::InvalidParameter`] if the fraction does not lie strictly
/// between 0 and 1, or either side of the split would be empty.
pub fn train_test_split(
    data: &Dataset,
    train_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset), MlError> {
    if !(train_fraction > 0.0 && train_fraction < 1.0) {
        return Err(MlError::InvalidParameter {
            name: "train_fraction",
            reason: format!("must lie in (0, 1), got {train_fraction}"),
        });
    }
    let mut indices: Vec<usize> = (0..data.len()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let cut = ((data.len() as f64) * train_fraction).round() as usize;
    if cut == 0 || cut >= data.len() {
        return Err(MlError::InvalidParameter {
            name: "train_fraction",
            reason: format!(
                "fraction {train_fraction} leaves an empty split for {} samples",
                data.len()
            ),
        });
    }
    Ok((data.subset(&indices[..cut])?, data.subset(&indices[cut..])?))
}

/// Stratified variant of [`train_test_split`]: the positive/negative class
/// ratio is preserved in both splits.
///
/// # Errors
///
/// Returns [`MlError::InvalidParameter`] if the fraction is out of range or a
/// class would end up empty on either side.
pub fn stratified_split(
    data: &Dataset,
    train_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset), MlError> {
    if !(train_fraction > 0.0 && train_fraction < 1.0) {
        return Err(MlError::InvalidParameter {
            name: "train_fraction",
            reason: format!("must lie in (0, 1), got {train_fraction}"),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for class in [true, false] {
        let mut class_idx: Vec<usize> = data
            .labels()
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| (l == class).then_some(i))
            .collect();
        if class_idx.is_empty() {
            continue;
        }
        class_idx.shuffle(&mut rng);
        let cut = ((class_idx.len() as f64) * train_fraction).round() as usize;
        if cut == 0 || cut >= class_idx.len() {
            return Err(MlError::InvalidParameter {
                name: "train_fraction",
                reason: format!(
                    "fraction {train_fraction} leaves an empty split for a class with {} samples",
                    class_idx.len()
                ),
            });
        }
        train_idx.extend_from_slice(&class_idx[..cut]);
        test_idx.extend_from_slice(&class_idx[cut..]);
    }
    Ok((data.subset(&train_idx)?, data.subset(&test_idx)?))
}

/// One fold of a leave-one-group-out split.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupFold {
    /// The group that is held out for testing.
    pub held_out_group: usize,
    /// Training subset (all other groups).
    pub train: Dataset,
    /// Test subset (the held-out group).
    pub test: Dataset,
}

/// Leave-one-group-out cross-validation folds. `groups[i]` assigns sample `i`
/// to a group (for the paper's protocol, the seizure the window came from);
/// each fold holds out one group entirely.
///
/// # Errors
///
/// Returns [`MlError::DimensionMismatch`] if the group vector length differs
/// from the dataset size and [`MlError::InvalidDataset`] if there are fewer
/// than two distinct groups.
pub fn leave_one_group_out(data: &Dataset, groups: &[usize]) -> Result<Vec<GroupFold>, MlError> {
    if groups.len() != data.len() {
        return Err(MlError::DimensionMismatch {
            detail: format!(
                "expected one group per sample ({} samples, {} groups)",
                data.len(),
                groups.len()
            ),
        });
    }
    let mut unique: Vec<usize> = groups.to_vec();
    unique.sort_unstable();
    unique.dedup();
    if unique.len() < 2 {
        return Err(MlError::InvalidDataset {
            detail: "leave-one-group-out needs at least two distinct groups".to_string(),
        });
    }
    let mut folds = Vec::with_capacity(unique.len());
    for &g in &unique {
        let test_idx: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter_map(|(i, &gi)| (gi == g).then_some(i))
            .collect();
        let train_idx: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter_map(|(i, &gi)| (gi != g).then_some(i))
            .collect();
        folds.push(GroupFold {
            held_out_group: g,
            train: data.subset(&train_idx)?,
            test: data.subset(&test_idx)?,
        });
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(n: usize) -> Dataset {
        Dataset::new(
            (0..n).map(|i| vec![i as f64]).collect(),
            (0..n).map(|i| i % 3 == 0).collect(),
        )
        .unwrap()
    }

    #[test]
    fn train_test_split_sizes_and_coverage() {
        let data = sample_data(100);
        let (train, test) = train_test_split(&data, 0.7, 1).unwrap();
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        // No sample appears in both splits (feature values are unique here).
        let train_vals: std::collections::HashSet<u64> =
            train.features().iter().map(|r| r[0].to_bits()).collect();
        assert!(test
            .features()
            .iter()
            .all(|r| !train_vals.contains(&r[0].to_bits())));
    }

    #[test]
    fn train_test_split_validation() {
        let data = sample_data(10);
        assert!(train_test_split(&data, 0.0, 0).is_err());
        assert!(train_test_split(&data, 1.0, 0).is_err());
        assert!(train_test_split(&data, 0.01, 0).is_err());
    }

    #[test]
    fn split_is_deterministic_in_seed() {
        let data = sample_data(50);
        let a = train_test_split(&data, 0.6, 9).unwrap();
        let b = train_test_split(&data, 0.6, 9).unwrap();
        assert_eq!(a, b);
        let c = train_test_split(&data, 0.6, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn stratified_split_preserves_class_balance() {
        let data = Dataset::new(
            (0..100).map(|i| vec![i as f64]).collect(),
            (0..100).map(|i| i < 20).collect(), // 20 % positive
        )
        .unwrap();
        let (train, test) = stratified_split(&data, 0.5, 3).unwrap();
        let frac = |d: &Dataset| d.num_positive() as f64 / d.len() as f64;
        assert!((frac(&train) - 0.2).abs() < 0.05);
        assert!((frac(&test) - 0.2).abs() < 0.05);
    }

    #[test]
    fn stratified_split_validation() {
        let data = sample_data(10);
        assert!(stratified_split(&data, 1.5, 0).is_err());
        // Only one positive sample: cannot stratify into two non-empty halves.
        let data = Dataset::new(
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![true, false, false],
        )
        .unwrap();
        assert!(stratified_split(&data, 0.5, 0).is_err());
    }

    #[test]
    fn leave_one_group_out_folds() {
        let data = sample_data(12);
        let groups: Vec<usize> = (0..12).map(|i| i / 4).collect(); // 3 groups of 4
        let folds = leave_one_group_out(&data, &groups).unwrap();
        assert_eq!(folds.len(), 3);
        for fold in &folds {
            assert_eq!(fold.test.len(), 4);
            assert_eq!(fold.train.len(), 8);
        }
        // Held-out groups are distinct and cover all groups.
        let held: std::collections::HashSet<usize> =
            folds.iter().map(|f| f.held_out_group).collect();
        assert_eq!(held.len(), 3);
    }

    #[test]
    fn leave_one_group_out_validation() {
        let data = sample_data(4);
        assert!(leave_one_group_out(&data, &[0, 0, 0]).is_err());
        assert!(leave_one_group_out(&data, &[0, 0, 0, 0]).is_err());
    }
}
