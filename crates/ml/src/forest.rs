//! Random forest classifier.
//!
//! This is the real-time detector family used by the paper (following Sopic et
//! al., e-Glass): an ensemble of CART trees, each trained on a bootstrap sample
//! with per-split feature subsampling, predicting by majority vote.

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::tree::{DecisionTree, DecisionTreeConfig};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Hyper-parameters of a [`RandomForest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomForestConfig {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Maximum depth of each tree.
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of features considered at each split; `None` uses
    /// `ceil(sqrt(F))`, the usual random-forest default.
    pub max_features: Option<usize>,
    /// Fraction of the training set drawn (with replacement) for each tree.
    pub bootstrap_fraction: f64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 50,
            max_depth: 10,
            min_samples_split: 2,
            max_features: None,
            bootstrap_fraction: 1.0,
        }
    }
}

/// A fitted random forest.
///
/// # Example
///
/// ```
/// use seizure_ml::{Dataset, RandomForest, RandomForestConfig};
///
/// # fn main() -> Result<(), seizure_ml::MlError> {
/// let data = Dataset::new(
///     (0..30).map(|i| vec![i as f64, (i * 7 % 5) as f64]).collect(),
///     (0..30).map(|i| i >= 15).collect(),
/// )?;
/// let forest = RandomForest::fit(&data, &RandomForestConfig::default(), 1)?;
/// assert!(forest.predict(&[29.0, 1.0]));
/// assert!(!forest.predict(&[1.0, 3.0]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    num_features: usize,
}

impl RandomForest {
    /// Fits a forest to `data`; `seed` makes the bootstrap samples and feature
    /// subsampling reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] if `n_trees` is zero, the
    /// bootstrap fraction is not in `(0, 1]`, or the tree hyper-parameters are
    /// invalid.
    pub fn fit(data: &Dataset, config: &RandomForestConfig, seed: u64) -> Result<Self, MlError> {
        if config.n_trees == 0 {
            return Err(MlError::InvalidParameter {
                name: "n_trees",
                reason: "the ensemble needs at least one tree".to_string(),
            });
        }
        if !(config.bootstrap_fraction > 0.0 && config.bootstrap_fraction <= 1.0) {
            return Err(MlError::InvalidParameter {
                name: "bootstrap_fraction",
                reason: format!("must lie in (0, 1], got {}", config.bootstrap_fraction),
            });
        }
        let max_features = match config.max_features {
            Some(k) => Some(k),
            None => Some(((data.num_features() as f64).sqrt().ceil() as usize).max(1)),
        };
        let tree_config = DecisionTreeConfig {
            max_depth: config.max_depth,
            min_samples_split: config.min_samples_split,
            max_features,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sample_count =
            ((data.len() as f64 * config.bootstrap_fraction).round() as usize).max(1);
        let mut trees = Vec::with_capacity(config.n_trees);
        for t in 0..config.n_trees {
            let indices: Vec<usize> = (0..sample_count)
                .map(|_| rng.gen_range(0..data.len()))
                .collect();
            let tree_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(t as u64);
            trees.push(DecisionTree::fit_with_indices(
                data,
                &indices,
                &tree_config,
                tree_seed,
            )?);
        }
        Ok(Self {
            trees,
            num_features: data.num_features(),
        })
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// The fitted trees, used by the flat-forest compiler.
    pub(crate) fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Number of features the forest was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Average positive-class probability over all trees.
    pub fn predict_proba(&self, sample: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict_proba(sample)).sum();
        sum / self.trees.len() as f64
    }

    /// Majority-vote class prediction.
    pub fn predict(&self, sample: &[f64]) -> bool {
        let votes = self.trees.iter().filter(|t| t.predict(sample)).count();
        2 * votes >= self.trees.len()
    }

    /// Predicts a batch of samples.
    pub fn predict_batch(&self, samples: &[Vec<f64>]) -> Vec<bool> {
        samples.iter().map(|s| self.predict(s)).collect()
    }

    /// Predicts class probabilities for a batch of samples.
    pub fn predict_proba_batch(&self, samples: &[Vec<f64>]) -> Vec<f64> {
        samples.iter().map(|s| self.predict_proba(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two Gaussian-ish blobs with some overlap.
    fn blob_dataset(n_per_class: usize, separation: f64) -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            let jitter1 = ((i * 37 + 13) % 101) as f64 / 101.0 - 0.5;
            let jitter2 = ((i * 53 + 29) % 97) as f64 / 97.0 - 0.5;
            rows.push(vec![jitter1, jitter2, ((i % 7) as f64) / 7.0]);
            labels.push(false);
            rows.push(vec![
                separation + jitter2,
                separation + jitter1,
                ((i % 5) as f64) / 5.0,
            ]);
            labels.push(true);
        }
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn separable_blobs_are_classified_accurately() {
        let data = blob_dataset(60, 3.0);
        let forest = RandomForest::fit(&data, &RandomForestConfig::default(), 3).unwrap();
        let correct = data
            .features()
            .iter()
            .zip(data.labels())
            .filter(|(row, &label)| forest.predict(row) == label)
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.97);
        assert_eq!(forest.num_trees(), 50);
        assert_eq!(forest.num_features(), 3);
    }

    #[test]
    fn probabilities_are_extreme_far_from_the_boundary() {
        let data = blob_dataset(60, 4.0);
        let forest = RandomForest::fit(&data, &RandomForestConfig::default(), 3).unwrap();
        assert!(forest.predict_proba(&[4.0, 4.0, 0.5]) > 0.9);
        assert!(forest.predict_proba(&[0.0, 0.0, 0.5]) < 0.1);
    }

    #[test]
    fn fit_is_deterministic_in_seed() {
        let data = blob_dataset(30, 2.0);
        let cfg = RandomForestConfig {
            n_trees: 11,
            ..RandomForestConfig::default()
        };
        let a = RandomForest::fit(&data, &cfg, 9).unwrap();
        let b = RandomForest::fit(&data, &cfg, 9).unwrap();
        assert_eq!(a, b);
        let c = RandomForest::fit(&data, &cfg, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn invalid_hyper_parameters_are_rejected() {
        let data = blob_dataset(5, 2.0);
        let zero_trees = RandomForestConfig {
            n_trees: 0,
            ..RandomForestConfig::default()
        };
        assert!(RandomForest::fit(&data, &zero_trees, 0).is_err());
        let bad_fraction = RandomForestConfig {
            bootstrap_fraction: 0.0,
            ..RandomForestConfig::default()
        };
        assert!(RandomForest::fit(&data, &bad_fraction, 0).is_err());
        let bad_fraction = RandomForestConfig {
            bootstrap_fraction: 1.5,
            ..RandomForestConfig::default()
        };
        assert!(RandomForest::fit(&data, &bad_fraction, 0).is_err());
    }

    #[test]
    fn batch_prediction_matches_single_prediction() {
        let data = blob_dataset(20, 3.0);
        let forest = RandomForest::fit(&data, &RandomForestConfig::default(), 5).unwrap();
        let batch = forest.predict_batch(data.features());
        for (row, batch_pred) in data.features().iter().zip(batch.iter()) {
            assert_eq!(forest.predict(row), *batch_pred);
        }
        let probas = forest.predict_proba_batch(data.features());
        assert_eq!(probas.len(), data.len());
        assert!(probas.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn forest_outperforms_single_stump_on_noisy_data() {
        let data = blob_dataset(80, 1.2);
        let stump_cfg = RandomForestConfig {
            n_trees: 1,
            max_depth: 1,
            ..RandomForestConfig::default()
        };
        let forest_cfg = RandomForestConfig {
            n_trees: 60,
            max_depth: 8,
            ..RandomForestConfig::default()
        };
        let accuracy = |f: &RandomForest| {
            data.features()
                .iter()
                .zip(data.labels())
                .filter(|(row, &label)| f.predict(row) == label)
                .count() as f64
                / data.len() as f64
        };
        let stump = RandomForest::fit(&data, &stump_cfg, 1).unwrap();
        let forest = RandomForest::fit(&data, &forest_cfg, 1).unwrap();
        assert!(accuracy(&forest) >= accuracy(&stump));
    }

    #[test]
    fn smaller_bootstrap_fraction_still_trains() {
        let data = blob_dataset(40, 2.5);
        let cfg = RandomForestConfig {
            n_trees: 15,
            bootstrap_fraction: 0.5,
            ..RandomForestConfig::default()
        };
        let forest = RandomForest::fit(&data, &cfg, 2).unwrap();
        assert_eq!(forest.num_trees(), 15);
        assert!(forest.predict(&[2.5, 2.5, 0.2]));
    }
}
