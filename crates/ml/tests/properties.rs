//! Property-based tests for the machine-learning substrate.

use proptest::prelude::*;
use seizure_ml::dataset::Dataset;
use seizure_ml::flat::FlatForest;
use seizure_ml::forest::{RandomForest, RandomForestConfig};
use seizure_ml::incremental::{IncrementalTrainer, IncrementalTrainerConfig};
use seizure_ml::kmeans::{KMeans, KMeansConfig};
use seizure_ml::metrics::{geometric_mean, ConfusionMatrix};
use seizure_ml::persist::journal::{replay, JournalWriter};
use seizure_ml::persist::{trainer_from_bytes, trainer_to_bytes};
use seizure_ml::split::{leave_one_group_out, stratified_split, train_test_split};
use seizure_ml::training::{train_forest, train_forest_with_width, IdWidth, TrainingSet};
use seizure_ml::tree::{DecisionTree, DecisionTreeConfig};

fn labeled_points(n: std::ops::Range<usize>) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<bool>)> {
    prop::collection::vec((prop::collection::vec(-50.0f64..50.0, 3), any::<bool>()), n)
        .prop_map(|rows| rows.into_iter().unzip())
}

/// Caps every single-class run of `labels` at `max_run` samples by flipping
/// the label that would extend it. The incremental trainer rejects
/// single-class appends longer than its block size (they degrade
/// block-specialized tree diversity), so random grow schedules must not
/// carve such a batch out of the label stream.
fn cap_runs(mut labels: Vec<bool>, max_run: usize) -> Vec<bool> {
    let mut run = 1;
    for i in 1..labels.len() {
        if labels[i] == labels[i - 1] {
            run += 1;
        } else {
            run = 1;
        }
        if run > max_run {
            labels[i] = !labels[i];
            run = 1;
        }
    }
    labels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tree_probabilities_are_probabilities((rows, labels) in labeled_points(4..60)) {
        let data = Dataset::new(rows.clone(), labels).unwrap();
        let tree = DecisionTree::fit(&data, &DecisionTreeConfig::default(), 0).unwrap();
        for row in &rows {
            let p = tree.predict_proba(row);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert_eq!(tree.predict(row), p >= 0.5);
        }
    }

    #[test]
    fn forest_probability_is_mean_of_votes((rows, labels) in labeled_points(6..40)) {
        let data = Dataset::new(rows.clone(), labels).unwrap();
        let config = RandomForestConfig { n_trees: 7, max_depth: 5, ..Default::default() };
        let forest = RandomForest::fit(&data, &config, 3).unwrap();
        for row in rows.iter().take(10) {
            let p = forest.predict_proba(row);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn flat_forest_is_bit_identical_to_boxed_forest((rows, labels) in labeled_points(6..50), seed in 0u64..50) {
        let data = Dataset::new(rows.clone(), labels).unwrap();
        let config = RandomForestConfig { n_trees: 9, max_depth: 6, ..Default::default() };
        let forest = RandomForest::fit(&data, &config, seed).unwrap();
        let flat = FlatForest::from_forest(&forest);
        prop_assert_eq!(flat.num_trees(), forest.num_trees());

        let matrix: Vec<f64> = rows.iter().flatten().copied().collect();
        let probas = flat.predict_proba_batch(&matrix, 3).unwrap();
        let classes = flat.predict_batch(&matrix, 3).unwrap();
        for ((row, p), c) in rows.iter().zip(&probas).zip(&classes) {
            // Bit-identical probabilities: same traversals, same accumulation
            // order, compared through the raw IEEE-754 representation.
            prop_assert_eq!(forest.predict_proba(row).to_bits(), p.to_bits());
            prop_assert_eq!(flat.predict_proba(row).to_bits(), p.to_bits());
            prop_assert_eq!(forest.predict(row), *c);
        }
    }

    #[test]
    fn parallel_training_engine_is_bit_identical_to_sequential_fit(
        (rows, labels) in labeled_points(6..50),
        seed in 0u64..50,
        n_trees in 1usize..12,
        bootstrap_thirds in 1usize..4,
    ) {
        let data = Dataset::new(rows.clone(), labels.clone()).unwrap();
        let config = RandomForestConfig {
            n_trees,
            max_depth: 6,
            bootstrap_fraction: bootstrap_thirds as f64 / 3.0,
            ..Default::default()
        };
        // Sequential reference: the boxed per-tree fit compiled to flat form.
        let reference = FlatForest::from_forest(&RandomForest::fit(&data, &config, seed).unwrap());
        // Engine: presorted columns, scratch-backed growth, parallel trees.
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let set = TrainingSet::from_rows(&flat, 3, &labels).unwrap();
        let engine = train_forest(&set, &config, seed).unwrap();
        prop_assert_eq!(&engine, &reference);
        for row in rows.iter().take(8) {
            prop_assert_eq!(
                engine.predict_proba(row).to_bits(),
                reference.predict_proba(row).to_bits()
            );
        }
    }

    #[test]
    fn presorted_split_finder_matches_seed_split_finder(
        (rows, labels) in labeled_points(8..60),
        seed in 0u64..30,
    ) {
        // A single tree over all features isolates the split finder: every
        // chosen (feature, threshold) pair of the presorted-column scan must
        // equal the boxed finder's per-node sort-and-scan choice.
        let data = Dataset::new(rows.clone(), labels.clone()).unwrap();
        let config = RandomForestConfig {
            n_trees: 1,
            max_depth: 5,
            max_features: Some(3),
            ..Default::default()
        };
        let reference = FlatForest::from_forest(&RandomForest::fit(&data, &config, seed).unwrap());
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let set = TrainingSet::from_rows(&flat, 3, &labels).unwrap();
        let engine = train_forest(&set, &config, seed).unwrap();
        prop_assert_eq!(engine, reference);
    }

    #[test]
    fn training_set_append_equals_full_rebuild(
        (rows, labels) in labeled_points(4..60),
        cut_raw in 0usize..1000,
    ) {
        let n = rows.len();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let cut = 1 + cut_raw % (n.max(2) - 1);
        let mut grown = TrainingSet::from_rows(&flat[..cut * 3], 3, &labels[..cut]).unwrap();
        grown.append_rows(&flat[cut * 3..], &labels[cut..]).unwrap();
        let rebuilt = TrainingSet::from_rows(&flat, 3, &labels).unwrap();
        // Exact equality including the merged presorted index arrays.
        prop_assert_eq!(grown, rebuilt);
    }

    #[test]
    fn narrow_and_wide_sample_ids_fit_bit_identical_forests(
        (rows, labels) in labeled_points(6..50),
        seed in 0u64..30,
        n_trees in 1usize..10,
    ) {
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let set = TrainingSet::from_rows(&flat, 3, &labels).unwrap();
        let config = RandomForestConfig { n_trees, max_depth: 6, ..Default::default() };
        let narrow = train_forest_with_width(&set, &config, seed, IdWidth::Narrow).unwrap();
        let wide = train_forest_with_width(&set, &config, seed, IdWidth::Wide).unwrap();
        prop_assert_eq!(&narrow, &wide);
        // Auto resolves to the narrow path below the 65536-sample boundary.
        prop_assert_eq!(&train_forest(&set, &config, seed).unwrap(), &narrow);
    }

    #[test]
    fn incremental_retraining_is_schedule_independent(
        (rows, labels) in labeled_points(10..80),
        seed in 0u64..30,
        cuts_raw in prop::collection::vec(1usize..1000, 0..3),
    ) {
        let n = rows.len();
        let labels = cap_runs(labels, 8);
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let config = IncrementalTrainerConfig {
            forest: RandomForestConfig { n_trees: 7, max_depth: 5, ..Default::default() },
            block_size: 8,
        };
        // A random grow schedule ending at the full dataset.
        let mut cuts: Vec<usize> = cuts_raw.iter().map(|c| 1 + c % n).collect();
        cuts.push(n);
        cuts.sort_unstable();
        cuts.dedup();
        let mut trainer = IncrementalTrainer::new(config, seed);
        let mut prev = 0;
        let mut forest = None;
        for &cut in &cuts {
            forest = Some(trainer.retrain(&flat[prev * 3..cut * 3], 3, &labels[prev..cut]).unwrap());
            prev = cut;
        }
        let forest = forest.unwrap();
        // Any schedule must equal the single-shot fit of the final dataset...
        let mut scratch = IncrementalTrainer::new(config, seed);
        let reference = scratch.retrain(&flat, 3, &labels).unwrap();
        prop_assert_eq!(&forest, &reference);
        // ...including identical predictions on a held-out matrix.
        let held: Vec<f64> = (0..60).map(|i| (i % 21) as f64 * 5.0 - 50.0).collect();
        prop_assert_eq!(
            forest.predict_batch(&held, 3).unwrap(),
            reference.predict_batch(&held, 3).unwrap()
        );
        let probas: Vec<u64> = forest.predict_proba_batch(&held, 3).unwrap().iter().map(|p| p.to_bits()).collect();
        let ref_probas: Vec<u64> = reference.predict_proba_batch(&held, 3).unwrap().iter().map(|p| p.to_bits()).collect();
        prop_assert_eq!(probas, ref_probas);
    }

    #[test]
    fn snapshot_resume_is_node_identical_at_any_split_point(
        (rows, labels) in labeled_points(10..80),
        seed in 0u64..30,
        cuts_raw in prop::collection::vec(1usize..1000, 1..4),
        split_raw in 0usize..1000,
    ) {
        let n = rows.len();
        let labels = cap_runs(labels, 8);
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let config = IncrementalTrainerConfig {
            forest: RandomForestConfig { n_trees: 7, max_depth: 5, ..Default::default() },
            block_size: 8,
        };
        // A random grow schedule ending at the full dataset, interrupted by
        // a save/load round trip after a random step.
        let mut cuts: Vec<usize> = cuts_raw.iter().map(|c| 1 + c % n).collect();
        cuts.push(n);
        cuts.sort_unstable();
        cuts.dedup();
        let split = split_raw % cuts.len();

        let mut uninterrupted = IncrementalTrainer::new(config, seed);
        let mut resumed: Option<IncrementalTrainer> = None;
        let mut prev = 0;
        let mut forest = None;
        let mut resumed_forest = None;
        for (step, &cut) in cuts.iter().enumerate() {
            let (r, l) = (&flat[prev * 3..cut * 3], &labels[prev..cut]);
            forest = Some(uninterrupted.retrain(r, 3, l).unwrap());
            if let Some(t) = resumed.as_mut() {
                resumed_forest = Some(t.retrain(r, 3, l).unwrap());
            }
            if step == split {
                // The process boundary: serialize, drop, restore.
                let bytes = trainer_to_bytes(&uninterrupted);
                let restored = trainer_from_bytes(&bytes).unwrap();
                prop_assert_eq!(&restored, &uninterrupted);
                resumed = Some(restored);
                resumed_forest = forest.clone();
            }
            prev = cut;
        }
        // The resumed trainer's final forest is node-identical to the
        // uninterrupted one's, and the trainers agree state for state.
        let resumed = resumed.unwrap();
        prop_assert_eq!(&resumed, &uninterrupted);
        prop_assert_eq!(&resumed_forest.unwrap(), &forest.unwrap());
    }

    /// The delta-journal invariant: a base snapshot taken at **any** split
    /// point of **any** grow schedule, plus the journal of the remaining
    /// retrains truncated at **any** byte, replays to a trainer
    /// node-identical to the uninterrupted trainer at the corresponding
    /// step — a torn final entry is dropped at an entry boundary, never
    /// misapplied.
    #[test]
    fn journal_replay_is_node_identical_at_any_truncation_point(
        (rows, labels) in labeled_points(10..80),
        seed in 0u64..30,
        cuts_raw in prop::collection::vec(1usize..1000, 1..5),
        split_raw in 0usize..1000,
        trunc_raw in 0usize..1_000_000,
    ) {
        let n = rows.len();
        let labels = cap_runs(labels, 8);
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let config = IncrementalTrainerConfig {
            forest: RandomForestConfig { n_trees: 7, max_depth: 5, ..Default::default() },
            block_size: 8,
        };
        let mut cuts: Vec<usize> = cuts_raw.iter().map(|c| 1 + c % n).collect();
        cuts.push(n);
        cuts.sort_unstable();
        cuts.dedup();
        let split = split_raw % cuts.len();

        // Grow uninterrupted; snapshot at the split point, journal every
        // retrain after it (flushing each entry into the simulated Flash
        // region), and remember the trainer state at each entry boundary
        // (what a truncated journal must replay to).
        let mut trainer = IncrementalTrainer::new(config, seed);
        let mut base: Option<Vec<u8>> = None;
        let mut writer: Option<JournalWriter> = None;
        let mut journal: Vec<u8> = Vec::new();
        let mut states: Vec<IncrementalTrainer> = Vec::new();
        let mut boundaries: Vec<usize> = Vec::new();
        let mut prev = 0;
        for (step, &cut) in cuts.iter().enumerate() {
            let (r, l) = (&flat[prev * 3..cut * 3], &labels[prev..cut]);
            trainer.retrain(r, 3, l).unwrap();
            if let Some(w) = writer.as_mut() {
                w.append_retrain(r, 3, l).unwrap();
                journal.extend_from_slice(&w.take_unflushed());
                states.push(trainer.clone());
                boundaries.push(journal.len());
            }
            if step == split {
                let bytes = trainer_to_bytes(&trainer);
                writer = Some(JournalWriter::new(&bytes, trainer.num_samples()).unwrap());
                base = Some(bytes);
                states.push(trainer.clone());
                boundaries.push(0);
            }
            prev = cut;
        }
        let base = base.unwrap();

        // Truncate at an arbitrary byte and replay: the reconstruction must
        // equal the uninterrupted trainer after the last complete entry.
        let trunc = trunc_raw % (journal.len() + 1);
        let replayed = replay(&base, &journal[..trunc]).unwrap();
        let applied = boundaries.iter().filter(|&&b| b <= trunc).count() - 1;
        prop_assert_eq!(replayed.report.entries_applied, applied);
        prop_assert_eq!(replayed.report.valid_len, boundaries[applied]);
        prop_assert_eq!(replayed.report.torn_bytes, trunc - boundaries[applied]);
        let expected = &states[applied];
        prop_assert_eq!(&replayed.trainer, expected);
        prop_assert_eq!(
            replayed.trainer.current_forest(),
            expected.current_forest()
        );
        // The untruncated journal reconstructs the final trainer exactly.
        let full = replay(&base, &journal).unwrap();
        prop_assert_eq!(&full.trainer, states.last().unwrap());
        prop_assert_eq!(full.report.torn_bytes, 0);
    }

    #[test]
    fn confusion_matrix_counts_are_consistent(predictions in prop::collection::vec(any::<bool>(), 1..200), flip in any::<u64>()) {
        let truth: Vec<bool> = predictions
            .iter()
            .enumerate()
            .map(|(i, &p)| if (flip >> (i % 64)) & 1 == 1 { !p } else { p })
            .collect();
        let cm = ConfusionMatrix::from_predictions(&predictions, &truth).unwrap();
        prop_assert_eq!(cm.total(), predictions.len());
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        prop_assert!((0.0..=1.0).contains(&cm.sensitivity()));
        prop_assert!((0.0..=1.0).contains(&cm.specificity()));
        prop_assert!(cm.geometric_mean() <= cm.sensitivity().max(cm.specificity()) + 1e-12);
        prop_assert!(cm.geometric_mean() + 1e-12 >= 0.0);
    }

    #[test]
    fn geometric_mean_lies_between_min_and_max(values in prop::collection::vec(0.01f64..1.0, 1..30)) {
        let g = geometric_mean(&values).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
    }

    #[test]
    fn train_test_split_partitions_the_data(n in 10usize..200, fraction in 0.2f64..0.8, seed in 0u64..100) {
        let data = Dataset::new(
            (0..n).map(|i| vec![i as f64]).collect(),
            (0..n).map(|i| i % 2 == 0).collect(),
        ).unwrap();
        let (train, test) = train_test_split(&data, fraction, seed).unwrap();
        prop_assert_eq!(train.len() + test.len(), n);
        // Every original sample appears exactly once across the two splits.
        let mut seen: Vec<f64> = train.features().iter().chain(test.features()).map(|r| r[0]).collect();
        seen.sort_by(f64::total_cmp);
        for (i, v) in seen.iter().enumerate() {
            prop_assert_eq!(*v, i as f64);
        }
    }

    #[test]
    fn stratified_split_keeps_both_classes(n in 20usize..200, seed in 0u64..100) {
        let data = Dataset::new(
            (0..n).map(|i| vec![i as f64]).collect(),
            (0..n).map(|i| i % 4 == 0).collect(),
        ).unwrap();
        let (train, test) = stratified_split(&data, 0.5, seed).unwrap();
        prop_assert!(train.num_positive() > 0 && train.num_negative() > 0);
        prop_assert!(test.num_positive() > 0 && test.num_negative() > 0);
    }

    #[test]
    fn leave_one_group_out_covers_every_sample_once(n_groups in 2usize..8, per_group in 1usize..6) {
        let n = n_groups * per_group;
        let data = Dataset::new(
            (0..n).map(|i| vec![i as f64]).collect(),
            (0..n).map(|i| i % 2 == 0).collect(),
        ).unwrap();
        let groups: Vec<usize> = (0..n).map(|i| i / per_group).collect();
        let folds = leave_one_group_out(&data, &groups).unwrap();
        prop_assert_eq!(folds.len(), n_groups);
        let total_test: usize = folds.iter().map(|f| f.test.len()).sum();
        prop_assert_eq!(total_test, n);
        for fold in &folds {
            prop_assert_eq!(fold.train.len() + fold.test.len(), n);
        }
    }

    /// The owned-block scratch load (k-way merge of the owned blocks'
    /// sorted runs, selection-local draws) must be bit-identical to the
    /// whole-pool reference load (full-pool scan, global draws — the old
    /// O(pool) layout) over random grow schedules: same trees, same nodes,
    /// same bits.
    #[test]
    fn owned_block_loads_match_whole_pool_reference_loads(
        (rows, labels) in labeled_points(10..80),
        seed in 0u64..30,
        cuts_raw in prop::collection::vec(1usize..1000, 0..3),
    ) {
        let n = rows.len();
        let labels = cap_runs(labels, 8);
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let config = IncrementalTrainerConfig {
            forest: RandomForestConfig { n_trees: 7, max_depth: 5, ..Default::default() },
            block_size: 8,
        };
        let mut cuts: Vec<usize> = cuts_raw.iter().map(|c| 1 + c % n).collect();
        cuts.push(n);
        cuts.sort_unstable();
        cuts.dedup();
        let mut owned = IncrementalTrainer::new(config, seed);
        let mut reference = IncrementalTrainer::new(config, seed);
        reference.set_reference_loads(true);
        let mut prev = 0;
        for &cut in &cuts {
            let (r, l) = (&flat[prev * 3..cut * 3], &labels[prev..cut]);
            let fast = owned.retrain(r, 3, l).unwrap();
            let slow = reference.retrain(r, 3, l).unwrap();
            prop_assert_eq!(&fast, &slow);
            prev = cut;
        }
    }

    #[test]
    fn kmeans_assigns_every_point_to_an_existing_cluster(seed in 0u64..200, k in 1usize..4) {
        let points: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i as f64 * 0.7 + seed as f64).sin() * 10.0, (i as f64 * 1.3).cos() * 10.0])
            .collect();
        let model = KMeans::fit(&points, &KMeansConfig { k, ..Default::default() }, seed).unwrap();
        prop_assert_eq!(model.centroids().len(), k);
        for p in &points {
            prop_assert!(model.predict(p) < k);
        }
        prop_assert!(model.inertia() >= 0.0);
    }
}

/// A large pseudo-random training set for the id-width boundary check.
fn boundary_set(n: usize) -> TrainingSet {
    let mut rows = Vec::with_capacity(n * 2);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        rows.push((h % 9973) as f64);
        rows.push(((h >> 32) % 101) as f64);
        labels.push(h % 89 < 44);
    }
    TrainingSet::from_rows(&rows, 2, &labels).unwrap()
}

/// The narrow (u16) and wide (u32) sample-id paths must agree exactly on
/// both sides of the 65535/65536 boundary, where the auto selection flips
/// from narrow to wide; one sample past the narrow address space the forced
/// narrow path must refuse instead of truncating ids.
#[test]
fn u16_sample_ids_are_bit_identical_at_the_65536_boundary() {
    let config = RandomForestConfig {
        n_trees: 2,
        max_depth: 4,
        bootstrap_fraction: 0.02,
        max_features: Some(2),
        ..RandomForestConfig::default()
    };
    // n = 65535: auto selects narrow ids.
    let below = boundary_set(65535);
    let narrow = train_forest_with_width(&below, &config, 3, IdWidth::Narrow).unwrap();
    let wide = train_forest_with_width(&below, &config, 3, IdWidth::Wide).unwrap();
    assert_eq!(narrow, wide);
    assert_eq!(train_forest(&below, &config, 3).unwrap(), narrow);
    // n = 65536: auto switches to wide ids; narrow still addresses exactly
    // 65536 samples (ids 0..=65535) and stays bit-identical.
    let at = boundary_set(65536);
    let wide = train_forest_with_width(&at, &config, 3, IdWidth::Wide).unwrap();
    assert_eq!(train_forest(&at, &config, 3).unwrap(), wide);
    assert_eq!(
        train_forest_with_width(&at, &config, 3, IdWidth::Narrow).unwrap(),
        wide
    );
    // n = 65537: the narrow address space is exhausted.
    let past = boundary_set(65537);
    assert!(train_forest_with_width(&past, &config, 3, IdWidth::Narrow).is_err());
    assert_eq!(
        train_forest(&past, &config, 3).unwrap(),
        train_forest_with_width(&past, &config, 3, IdWidth::Wide).unwrap()
    );
}

/// Pseudo-random rows/labels for the 65 536-crossing tests (same generator
/// as [`boundary_set`], returned flat).
fn boundary_rows(n: usize) -> (Vec<f64>, Vec<bool>) {
    let mut rows = Vec::with_capacity(n * 2);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        rows.push((h % 9973) as f64);
        rows.push(((h >> 32) % 101) as f64);
        labels.push(h % 89 < 44);
    }
    (rows, labels)
}

/// Growing a pool **across** the 65 536-row boundary under block-relative
/// u16 ids must be bit-identical to a from-scratch build: the append splits
/// the tail-block merge from the fresh second block, and the trained forest
/// (auto-wide at this size) must match the rebuilt set's node for node.
#[test]
fn append_vs_rebuild_is_bit_identical_crossing_the_65536_boundary() {
    let (rows, labels) = boundary_rows(70_000);
    let cut = 65_000; // below the boundary; the append crosses it
    let mut grown = TrainingSet::from_rows(&rows[..cut * 2], 2, &labels[..cut]).unwrap();
    grown
        .append_rows(&rows[cut * 2..], &labels[cut..])
        .unwrap();
    let rebuilt = TrainingSet::from_rows(&rows, 2, &labels).unwrap();
    assert_eq!(grown, rebuilt);

    let config = RandomForestConfig {
        n_trees: 2,
        max_depth: 4,
        bootstrap_fraction: 0.02,
        max_features: Some(2),
        ..RandomForestConfig::default()
    };
    let from_grown = train_forest(&grown, &config, 5).unwrap();
    let from_rebuilt = train_forest(&rebuilt, &config, 5).unwrap();
    assert_eq!(from_grown, from_rebuilt);
}

/// `save → load → retrain` across the 65 536-row boundary: a trainer
/// snapshotted below the boundary and restored must retrain the crossing
/// batch node-identically to the uninterrupted trainer — and both must
/// equal a from-scratch fit of the final pool (block-relative ids dissolve
/// the id-width cliff; refitted subset trees keep narrow ids throughout).
#[test]
fn save_load_retrain_is_node_identical_crossing_the_65536_boundary() {
    let (rows, labels) = boundary_rows(70_000);
    let cut = 64_000;
    let config = IncrementalTrainerConfig {
        forest: RandomForestConfig {
            n_trees: 5,
            max_depth: 4,
            bootstrap_fraction: 0.02,
            max_features: Some(2),
            ..RandomForestConfig::default()
        },
        block_size: 8192,
    };
    let mut uninterrupted = IncrementalTrainer::new(config, 9);
    uninterrupted
        .retrain(&rows[..cut * 2], 2, &labels[..cut])
        .unwrap();

    let restored = trainer_from_bytes(&trainer_to_bytes(&uninterrupted)).unwrap();
    assert_eq!(restored, uninterrupted);
    let mut resumed = restored;

    let direct = uninterrupted
        .retrain(&rows[cut * 2..], 2, &labels[cut..])
        .unwrap();
    let after_resume = resumed
        .retrain(&rows[cut * 2..], 2, &labels[cut..])
        .unwrap();
    assert_eq!(direct, after_resume);
    assert_eq!(resumed, uninterrupted);

    let mut scratch = IncrementalTrainer::new(config, 9);
    let reference = scratch.retrain(&rows, 2, &labels).unwrap();
    assert_eq!(direct, reference);
}
