//! Property-based tests for the machine-learning substrate.

use proptest::prelude::*;
use seizure_ml::dataset::Dataset;
use seizure_ml::flat::FlatForest;
use seizure_ml::forest::{RandomForest, RandomForestConfig};
use seizure_ml::kmeans::{KMeans, KMeansConfig};
use seizure_ml::metrics::{geometric_mean, ConfusionMatrix};
use seizure_ml::split::{leave_one_group_out, stratified_split, train_test_split};
use seizure_ml::training::{train_forest, TrainingSet};
use seizure_ml::tree::{DecisionTree, DecisionTreeConfig};

fn labeled_points(n: std::ops::Range<usize>) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<bool>)> {
    prop::collection::vec((prop::collection::vec(-50.0f64..50.0, 3), any::<bool>()), n)
        .prop_map(|rows| rows.into_iter().unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tree_probabilities_are_probabilities((rows, labels) in labeled_points(4..60)) {
        let data = Dataset::new(rows.clone(), labels).unwrap();
        let tree = DecisionTree::fit(&data, &DecisionTreeConfig::default(), 0).unwrap();
        for row in &rows {
            let p = tree.predict_proba(row);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert_eq!(tree.predict(row), p >= 0.5);
        }
    }

    #[test]
    fn forest_probability_is_mean_of_votes((rows, labels) in labeled_points(6..40)) {
        let data = Dataset::new(rows.clone(), labels).unwrap();
        let config = RandomForestConfig { n_trees: 7, max_depth: 5, ..Default::default() };
        let forest = RandomForest::fit(&data, &config, 3).unwrap();
        for row in rows.iter().take(10) {
            let p = forest.predict_proba(row);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn flat_forest_is_bit_identical_to_boxed_forest((rows, labels) in labeled_points(6..50), seed in 0u64..50) {
        let data = Dataset::new(rows.clone(), labels).unwrap();
        let config = RandomForestConfig { n_trees: 9, max_depth: 6, ..Default::default() };
        let forest = RandomForest::fit(&data, &config, seed).unwrap();
        let flat = FlatForest::from_forest(&forest);
        prop_assert_eq!(flat.num_trees(), forest.num_trees());

        let matrix: Vec<f64> = rows.iter().flatten().copied().collect();
        let probas = flat.predict_proba_batch(&matrix, 3).unwrap();
        let classes = flat.predict_batch(&matrix, 3).unwrap();
        for ((row, p), c) in rows.iter().zip(&probas).zip(&classes) {
            // Bit-identical probabilities: same traversals, same accumulation
            // order, compared through the raw IEEE-754 representation.
            prop_assert_eq!(forest.predict_proba(row).to_bits(), p.to_bits());
            prop_assert_eq!(flat.predict_proba(row).to_bits(), p.to_bits());
            prop_assert_eq!(forest.predict(row), *c);
        }
    }

    #[test]
    fn parallel_training_engine_is_bit_identical_to_sequential_fit(
        (rows, labels) in labeled_points(6..50),
        seed in 0u64..50,
        n_trees in 1usize..12,
        bootstrap_thirds in 1usize..4,
    ) {
        let data = Dataset::new(rows.clone(), labels.clone()).unwrap();
        let config = RandomForestConfig {
            n_trees,
            max_depth: 6,
            bootstrap_fraction: bootstrap_thirds as f64 / 3.0,
            ..Default::default()
        };
        // Sequential reference: the boxed per-tree fit compiled to flat form.
        let reference = FlatForest::from_forest(&RandomForest::fit(&data, &config, seed).unwrap());
        // Engine: presorted columns, scratch-backed growth, parallel trees.
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let set = TrainingSet::from_rows(&flat, 3, &labels).unwrap();
        let engine = train_forest(&set, &config, seed).unwrap();
        prop_assert_eq!(&engine, &reference);
        for row in rows.iter().take(8) {
            prop_assert_eq!(
                engine.predict_proba(row).to_bits(),
                reference.predict_proba(row).to_bits()
            );
        }
    }

    #[test]
    fn presorted_split_finder_matches_seed_split_finder(
        (rows, labels) in labeled_points(8..60),
        seed in 0u64..30,
    ) {
        // A single tree over all features isolates the split finder: every
        // chosen (feature, threshold) pair of the presorted-column scan must
        // equal the boxed finder's per-node sort-and-scan choice.
        let data = Dataset::new(rows.clone(), labels.clone()).unwrap();
        let config = RandomForestConfig {
            n_trees: 1,
            max_depth: 5,
            max_features: Some(3),
            ..Default::default()
        };
        let reference = FlatForest::from_forest(&RandomForest::fit(&data, &config, seed).unwrap());
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let set = TrainingSet::from_rows(&flat, 3, &labels).unwrap();
        let engine = train_forest(&set, &config, seed).unwrap();
        prop_assert_eq!(engine, reference);
    }

    #[test]
    fn confusion_matrix_counts_are_consistent(predictions in prop::collection::vec(any::<bool>(), 1..200), flip in any::<u64>()) {
        let truth: Vec<bool> = predictions
            .iter()
            .enumerate()
            .map(|(i, &p)| if (flip >> (i % 64)) & 1 == 1 { !p } else { p })
            .collect();
        let cm = ConfusionMatrix::from_predictions(&predictions, &truth).unwrap();
        prop_assert_eq!(cm.total(), predictions.len());
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        prop_assert!((0.0..=1.0).contains(&cm.sensitivity()));
        prop_assert!((0.0..=1.0).contains(&cm.specificity()));
        prop_assert!(cm.geometric_mean() <= cm.sensitivity().max(cm.specificity()) + 1e-12);
        prop_assert!(cm.geometric_mean() + 1e-12 >= 0.0);
    }

    #[test]
    fn geometric_mean_lies_between_min_and_max(values in prop::collection::vec(0.01f64..1.0, 1..30)) {
        let g = geometric_mean(&values).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
    }

    #[test]
    fn train_test_split_partitions_the_data(n in 10usize..200, fraction in 0.2f64..0.8, seed in 0u64..100) {
        let data = Dataset::new(
            (0..n).map(|i| vec![i as f64]).collect(),
            (0..n).map(|i| i % 2 == 0).collect(),
        ).unwrap();
        let (train, test) = train_test_split(&data, fraction, seed).unwrap();
        prop_assert_eq!(train.len() + test.len(), n);
        // Every original sample appears exactly once across the two splits.
        let mut seen: Vec<f64> = train.features().iter().chain(test.features()).map(|r| r[0]).collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, v) in seen.iter().enumerate() {
            prop_assert_eq!(*v, i as f64);
        }
    }

    #[test]
    fn stratified_split_keeps_both_classes(n in 20usize..200, seed in 0u64..100) {
        let data = Dataset::new(
            (0..n).map(|i| vec![i as f64]).collect(),
            (0..n).map(|i| i % 4 == 0).collect(),
        ).unwrap();
        let (train, test) = stratified_split(&data, 0.5, seed).unwrap();
        prop_assert!(train.num_positive() > 0 && train.num_negative() > 0);
        prop_assert!(test.num_positive() > 0 && test.num_negative() > 0);
    }

    #[test]
    fn leave_one_group_out_covers_every_sample_once(n_groups in 2usize..8, per_group in 1usize..6) {
        let n = n_groups * per_group;
        let data = Dataset::new(
            (0..n).map(|i| vec![i as f64]).collect(),
            (0..n).map(|i| i % 2 == 0).collect(),
        ).unwrap();
        let groups: Vec<usize> = (0..n).map(|i| i / per_group).collect();
        let folds = leave_one_group_out(&data, &groups).unwrap();
        prop_assert_eq!(folds.len(), n_groups);
        let total_test: usize = folds.iter().map(|f| f.test.len()).sum();
        prop_assert_eq!(total_test, n);
        for fold in &folds {
            prop_assert_eq!(fold.train.len() + fold.test.len(), n);
        }
    }

    #[test]
    fn kmeans_assigns_every_point_to_an_existing_cluster(seed in 0u64..200, k in 1usize..4) {
        let points: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i as f64 * 0.7 + seed as f64).sin() * 10.0, (i as f64 * 1.3).cos() * 10.0])
            .collect();
        let model = KMeans::fit(&points, &KMeansConfig { k, ..Default::default() }, seed).unwrap();
        prop_assert_eq!(model.centroids().len(), k);
        for p in &points {
            prop_assert!(model.predict(p) < k);
        }
        prop_assert!(model.inertia() >= 0.0);
    }
}
