//! Crash-injection property suite for the A/B Flash store.
//!
//! The invariant under test, from the store's contract: after a crash at
//! **any byte** of a save/compact/append stream — including torn
//! multi-sector writes and retention bit flips — remounting yields either
//! the state before the interrupted operation or the fully committed state,
//! never a panic and never silent corruption. "State" is byte-exact: the
//! committed base snapshot plus the journal prefix bound to it, which
//! [`journal::replay`] must re-apply cleanly (node-identical trainer).

use proptest::prelude::*;
use seizure_ml::forest::RandomForestConfig;
use seizure_ml::incremental::{IncrementalTrainer, IncrementalTrainerConfig};
use seizure_ml::persist::journal::{self, JournalWriter};
use seizure_ml::persist::store::{FaultyFlash, FlashGeometry, FlashStore};
use seizure_ml::persist::trainer_to_bytes;

const NUM_FEATURES: usize = 2;

fn rows_and_labels(n: usize, salt: usize) -> (Vec<f64>, Vec<bool>) {
    let mut rows = Vec::with_capacity(n * NUM_FEATURES);
    let mut labels = Vec::with_capacity(n);
    for i in salt..salt + n {
        let noise = ((i * 37 + 11) % 23) as f64 / 23.0;
        let positive = i % 2 == 0;
        rows.push(if positive { 2.0 + noise } else { -1.0 - noise });
        rows.push(noise);
        labels.push(positive);
    }
    (rows, labels)
}

fn tiny_trainer(n: usize) -> IncrementalTrainer {
    let config = IncrementalTrainerConfig {
        forest: RandomForestConfig {
            n_trees: 3,
            max_depth: 3,
            ..RandomForestConfig::default()
        },
        block_size: 8,
    };
    let (rows, labels) = rows_and_labels(n, 0);
    let mut trainer = IncrementalTrainer::new(config, 11);
    trainer.retrain(&rows, NUM_FEATURES, &labels).unwrap();
    trainer
}

/// One store operation in an on-device persistence stream.
#[derive(Debug, Clone)]
enum Op {
    /// Append one journal frame.
    Append(Vec<u8>),
    /// Compact: commit a fresh base into the inactive slot.
    Commit(Vec<u8>),
}

/// Byte-exact logical store state: the committed base plus the journal
/// prefix bound to it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    base: Vec<u8>,
    journal: Vec<u8>,
    entries: usize,
}

/// Builds a save/append/compact stream of `plan` steps (`None` = compact,
/// `Some(batch)` = journal append of a real retrain batch), returning the
/// initial base, the ops and the expected state after every prefix of ops
/// (`states[i]` = state once `i` ops have completed).
fn build_stream(pool: usize, plan: &[Option<usize>]) -> (Vec<u8>, Vec<Op>, Vec<State>) {
    let mut trainer = tiny_trainer(pool);
    let base0 = trainer_to_bytes(&trainer);
    let mut writer = JournalWriter::new(&base0, trainer.num_samples()).unwrap();
    let mut ops = Vec::new();
    let mut states = vec![State {
        base: base0.clone(),
        journal: Vec::new(),
        entries: 0,
    }];
    let mut salt = pool;
    for step in plan {
        let previous = states.last().unwrap().clone();
        let next = match *step {
            Some(batch) => {
                let (rows, labels) = rows_and_labels(batch, salt);
                salt += batch;
                trainer.retrain(&rows, NUM_FEATURES, &labels).unwrap();
                writer.append_retrain(&rows, NUM_FEATURES, &labels).unwrap();
                let frame = writer.take_unflushed();
                ops.push(Op::Append(frame.clone()));
                let mut journal = previous.journal;
                journal.extend_from_slice(&frame);
                State {
                    base: previous.base,
                    journal,
                    entries: previous.entries + 1,
                }
            }
            None => {
                let base = trainer_to_bytes(&trainer);
                writer = JournalWriter::new(&base, trainer.num_samples()).unwrap();
                ops.push(Op::Commit(base.clone()));
                State {
                    base,
                    journal: Vec::new(),
                    entries: 0,
                }
            }
        };
        states.push(next);
    }
    (base0, ops, states)
}

fn geometry_for(states: &[State]) -> FlashGeometry {
    let base_capacity = states.iter().map(|s| s.base.len()).max().unwrap() + 64;
    let journal_bytes = states.iter().map(|s| s.journal.len()).max().unwrap() + 256;
    FlashGeometry::for_base(base_capacity, journal_bytes)
}

/// Mounts and runs the op stream until the first injected failure.
/// Returns the device and the index of the op that died, if any.
fn run_stream(
    flash: FaultyFlash,
    geometry: FlashGeometry,
    ops: &[Op],
) -> (FaultyFlash, Option<usize>) {
    let (mut store, _) = FlashStore::mount(flash, geometry).expect("mount before the crash");
    for (i, op) in ops.iter().enumerate() {
        let outcome = match op {
            Op::Append(frame) => store.append_journal(frame),
            Op::Commit(base) => store.commit_base(base),
        };
        if outcome.is_err() {
            return (store.into_flash(), Some(i));
        }
    }
    (store.into_flash(), None)
}

/// Remounts after a crash and checks the store invariant: the observed
/// state is exactly `states[died]` (pre-op) or `states[died + 1]`
/// (committed), and the journal replays cleanly against the base.
fn assert_recovers(
    flash: FaultyFlash,
    geometry: FlashGeometry,
    states: &[State],
    died: Option<usize>,
    context: &str,
) {
    let (store, report) = FlashStore::mount(flash.reboot(), geometry)
        .unwrap_or_else(|e| panic!("{context}: store lost after crash: {e}"));
    let observed = State {
        base: store.base().unwrap(),
        journal: store.journal().unwrap(),
        entries: report.journal_entries,
    };
    match died {
        Some(i) => assert!(
            observed == states[i] || observed == states[i + 1],
            "{context}: crash during op {i} recovered neither the pre-save nor the committed state \
             (observed base {} bytes / {} entries)",
            observed.base.len(),
            observed.entries
        ),
        None => assert_eq!(
            &observed,
            states.last().unwrap(),
            "{context}: fault-free run must land in the final state"
        ),
    }
    let replayed = journal::replay(&observed.base, &observed.journal)
        .unwrap_or_else(|e| panic!("{context}: recovered state does not replay: {e}"));
    assert_eq!(
        replayed.report.entries_applied, observed.entries,
        "{context}"
    );
}

/// The canonical stream: two appends, a compaction, another append, a
/// second compaction, a final append — every transition the store has.
fn canonical_stream() -> (Vec<u8>, Vec<Op>, Vec<State>) {
    build_stream(8, &[Some(4), Some(4), None, Some(4), None, Some(4)])
}

/// Every expected state must itself be semantically sound: replaying its
/// journal over its base reproduces the uninterrupted trainer node-identically.
#[test]
fn expected_states_replay_node_identically() {
    let (_, _, states) = canonical_stream();
    let mut snapshots = Vec::new();
    for state in &states {
        let replayed = journal::replay(&state.base, &state.journal).unwrap();
        assert_eq!(replayed.report.entries_applied, state.entries);
        snapshots.push(trainer_to_bytes(&replayed.trainer));
    }
    // A compaction changes the representation, not the trainer: the state
    // right after a commit replays to the same bytes as the committed base.
    for (state, snapshot) in states.iter().zip(&snapshots) {
        if state.entries == 0 {
            assert_eq!(&state.base, snapshot);
        }
    }
    // And the stream genuinely grows the pool — the states are all distinct.
    for pair in states.windows(2) {
        assert_ne!(pair[0], pair[1]);
    }
}

#[test]
fn power_loss_at_every_byte_recovers_pre_or_post_state() {
    let (base0, ops, states) = canonical_stream();
    let geometry = geometry_for(&states);

    // Format once, fault-free; the sweep replays the op stream on copies.
    let store =
        FlashStore::format(FaultyFlash::new(geometry.total_bytes()), geometry, &base0).unwrap();
    let image = store.into_flash().image().to_vec();

    let (clean, died) = run_stream(FaultyFlash::from_image(image.clone()), geometry, &ops);
    assert_eq!(died, None);
    let total_bytes = clean.bytes_written();
    assert_recovers(clean, geometry, &states, None, "fault-free");

    for cut in 0..=total_bytes {
        let flash = FaultyFlash::from_image(image.clone()).power_loss_after(cut);
        let (flash, died) = run_stream(flash, geometry, &ops);
        assert_eq!(
            died.is_some(),
            cut < total_bytes,
            "cut {cut} of {total_bytes} must die exactly when inside the stream"
        );
        assert_recovers(flash, geometry, &states, died, &format!("cut {cut}"));
    }
}

#[test]
fn power_loss_with_torn_sector_order_recovers_pre_or_post_state() {
    let (base0, ops, states) = canonical_stream();
    let geometry = geometry_for(&states);
    let store =
        FlashStore::format(FaultyFlash::new(geometry.total_bytes()), geometry, &base0).unwrap();
    let image = store.into_flash().image().to_vec();
    let (clean, _) = run_stream(FaultyFlash::from_image(image.clone()), geometry, &ops);
    let total_bytes = clean.bytes_written();

    // Scrambled sector order makes the byte position of the cut land in a
    // different part of each write; stride the sweep to keep it quick while
    // still covering every operation many times over.
    for seed in 1..=3u64 {
        for cut in (0..=total_bytes).step_by(7) {
            let flash = FaultyFlash::from_image(image.clone())
                .with_sector_bytes(32)
                .scrambled(seed)
                .power_loss_after(cut);
            let (flash, died) = run_stream(flash, geometry, &ops);
            assert_recovers(
                flash,
                geometry,
                &states,
                died,
                &format!("seed {seed} cut {cut}"),
            );
        }
    }
}

#[test]
fn single_bit_flips_never_unmount_the_store() {
    let (base0, ops, states) = canonical_stream();
    let geometry = geometry_for(&states);
    let store =
        FlashStore::format(FaultyFlash::new(geometry.total_bytes()), geometry, &base0).unwrap();
    let image = store.into_flash().image().to_vec();
    let (flash, died) = run_stream(FaultyFlash::from_image(image), geometry, &ops);
    assert_eq!(died, None);
    let settled = flash.image().to_vec();

    // After the full stream: the active slot holds the final base with one
    // appended entry; the inactive slot still holds the previous base. A
    // single retention flip may cost the journal tail or force the fallback
    // to the previous base — but never the whole store, and never a panic.
    let full = states.last().unwrap().clone();
    let trimmed = State {
        base: full.base.clone(),
        journal: Vec::new(),
        entries: 0,
    };
    // A flip in the active slot forces the fallback to the *previous
    // committed base* (the inactive slot), whose journal entries are gone.
    let previous_base = states
        .iter()
        .rev()
        .map(|s| &s.base)
        .find(|base| **base != full.base)
        .unwrap()
        .clone();
    let fallback = State {
        base: previous_base,
        journal: Vec::new(),
        entries: 0,
    };

    for offset in 0..settled.len() {
        let mut flash = FaultyFlash::from_image(settled.clone());
        flash.flip_bit(offset, (offset % 8) as u32);
        let (store, report) = FlashStore::mount(flash, geometry)
            .unwrap_or_else(|e| panic!("bit flip at byte {offset} unmounted the store: {e}"));
        let observed = State {
            base: store.base().unwrap(),
            journal: store.journal().unwrap(),
            entries: report.journal_entries,
        };
        assert!(
            observed == full || observed == trimmed || observed == fallback,
            "bit flip at byte {offset} produced an unexpected state \
             ({} base bytes, {} entries)",
            observed.base.len(),
            observed.entries
        );
        journal::replay(&observed.base, &observed.journal)
            .unwrap_or_else(|e| panic!("bit flip at byte {offset}: state does not replay: {e}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized streams: arbitrary append/compact plans, a random power
    /// loss cut, and a random torn-write seed — the invariant holds for
    /// every one of them.
    #[test]
    fn random_streams_survive_random_power_loss(
        plan in prop::collection::vec(0usize..5, 2..7),
        cut_scale in 0.0f64..1.0,
        scramble in any::<u64>(),
        torn in any::<bool>(),
    ) {
        // 0 = compact, 1..=4 = append that many samples.
        let plan: Vec<Option<usize>> = plan
            .iter()
            .map(|&step| if step == 0 { None } else { Some(step) })
            .collect();
        let (base0, ops, states) = build_stream(8, &plan);
        let geometry = geometry_for(&states);
        let store = FlashStore::format(
            FaultyFlash::new(geometry.total_bytes()),
            geometry,
            &base0,
        ).unwrap();
        let image = store.into_flash().image().to_vec();
        let (clean, died) = run_stream(FaultyFlash::from_image(image.clone()), geometry, &ops);
        prop_assert_eq!(died, None);
        let total_bytes = clean.bytes_written();

        let cut = ((total_bytes as f64) * cut_scale) as usize;
        let mut flash = FaultyFlash::from_image(image).power_loss_after(cut);
        if torn {
            flash = flash.with_sector_bytes(32).scrambled(scramble);
        }
        let (flash, died) = run_stream(flash, geometry, &ops);
        assert_recovers(flash, geometry, &states, died, &format!("random cut {cut}"));
    }
}
