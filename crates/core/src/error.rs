//! Error type for the core methodology.

use seizure_data::DataError;
use seizure_features::FeatureError;
use seizure_ml::persist::PersistError;
use seizure_ml::MlError;
use std::error::Error;
use std::fmt;

/// Error returned by the core self-learning methodology.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Feature extraction failed.
    Feature(FeatureError),
    /// The machine-learning substrate failed.
    Ml(MlError),
    /// The data substrate failed.
    Data(DataError),
    /// A persisted state snapshot — or a delta-journal entry layered on one
    /// (see `seizure_ml::persist::journal`) — could not be decoded or
    /// re-applied.
    Persist(PersistError),
    /// An algorithm parameter was invalid (window length, subsampling step, …).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// The signal is too short for the requested analysis.
    SignalTooShort {
        /// Description of what was required.
        detail: String,
    },
    /// An operation needed a fitted model or non-empty state that was missing.
    InvalidState {
        /// Description of the missing precondition.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Feature(e) => write!(f, "feature extraction failed: {e}"),
            CoreError::Ml(e) => write!(f, "classifier failed: {e}"),
            CoreError::Data(e) => write!(f, "data substrate failed: {e}"),
            CoreError::Persist(e) => write!(f, "state restore failed: {e}"),
            CoreError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            CoreError::SignalTooShort { detail } => write!(f, "signal too short: {detail}"),
            CoreError::InvalidState { detail } => write!(f, "invalid state: {detail}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Feature(e) => Some(e),
            CoreError::Ml(e) => Some(e),
            CoreError::Data(e) => Some(e),
            CoreError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FeatureError> for CoreError {
    fn from(e: FeatureError) -> Self {
        CoreError::Feature(e)
    }
}

impl From<MlError> for CoreError {
    fn from(e: MlError) -> Self {
        CoreError::Ml(e)
    }
}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}

impl From<PersistError> for CoreError {
    fn from(e: PersistError) -> Self {
        CoreError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: CoreError = FeatureError::SignalTooShort {
            actual: 1,
            required: 10,
        }
        .into();
        assert!(e.to_string().contains("feature extraction"));
        assert!(e.source().is_some());

        let e: CoreError = MlError::InvalidDataset {
            detail: "empty".into(),
        }
        .into();
        assert!(e.to_string().contains("classifier"));

        let e: CoreError = DataError::InvalidParameter {
            name: "fs",
            reason: "bad".into(),
        }
        .into();
        assert!(e.to_string().contains("data substrate"));

        let e: CoreError = PersistError::UnsupportedVersion { found: 7 }.into();
        assert!(e.to_string().contains("state restore"));
        assert!(e.source().is_some());

        // Journal replay failures surface through the same variant, with the
        // entry-level detail preserved.
        let e: CoreError = PersistError::Corrupted {
            detail: "journal entry 3 does not re-apply: boom".into(),
        }
        .into();
        assert!(e.to_string().contains("journal entry 3"));

        let e = CoreError::InvalidParameter {
            name: "window",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("window"));
        assert!(e.source().is_none());

        let e = CoreError::SignalTooShort {
            detail: "need 2 windows".into(),
        };
        assert!(e.to_string().contains("too short"));

        let e = CoreError::InvalidState {
            detail: "detector not trained".into(),
        };
        assert!(e.to_string().contains("not trained"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
