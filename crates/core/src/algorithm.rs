//! Algorithm 1: a-posteriori epileptic seizure detection.
//!
//! The algorithm receives the feature matrix `X[L][F]` (one row per sliding
//! window of the EEG signal) and the window length `W` (the patient's average
//! seizure duration expressed in feature-matrix rows). It slides a window of
//! `W` rows over the matrix and, for each position, accumulates the mean
//! absolute per-feature difference between the rows inside the window and every
//! fourth row outside it. The Euclidean norm of that per-feature distance
//! vector gives a single distance per position; the position with the maximum
//! distance is labeled as the seizure.
//!
//! Two implementations are provided:
//!
//! * [`Implementation::Reference`] follows the paper's pseudo-code literally and
//!   has the paper's `O(L² · W · F)` complexity.
//! * [`Implementation::Optimized`] produces bit-identical distance rankings in
//!   `O(L · W · F · (log L + W / s))` using sorted prefix sums over the
//!   subsampled rows, which makes the full-scale experiments tractable.

use crate::error::CoreError;
use seizure_features::normalize::normalize_features;
use seizure_features::FeatureMatrix;

/// Which implementation of Algorithm 1 to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Implementation {
    /// Literal transcription of the paper's pseudo-code (`O(L²WF)`).
    Reference,
    /// Prefix-sum accelerated variant with identical output.
    #[default]
    Optimized,
}

/// Configuration of the a-posteriori detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Subsampling step for the points outside the window (the paper uses every
    /// fourth point because consecutive windows overlap by 75 %).
    pub subsample_step: usize,
    /// Implementation variant.
    pub implementation: Implementation,
    /// Whether to z-normalize each feature across the signal before computing
    /// distances (Line 1 of the pseudo-code). Disable only for debugging.
    pub normalize: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            subsample_step: 4,
            implementation: Implementation::Optimized,
            normalize: true,
        }
    }
}

/// Result of running Algorithm 1 on a feature matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Index `y` of the window (feature-matrix row) where the detected seizure
    /// starts.
    pub window_index: usize,
    /// The window length `W` in feature-matrix rows the detection was run with.
    pub window_length: usize,
    /// Distance value for every candidate position (`L - W` entries).
    pub distances: Vec<f64>,
}

impl Detection {
    /// The maximum distance value (the score of the detected position).
    pub fn peak_distance(&self) -> f64 {
        self.distances[self.window_index]
    }

    /// Range of feature-matrix rows labeled as seizure: `[y, y + W)`.
    pub fn labeled_rows(&self) -> std::ops::Range<usize> {
        self.window_index..self.window_index + self.window_length
    }
}

/// Runs Algorithm 1 on `features` with a seizure window of `window_length` rows.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `window_length` or the
/// subsampling step is zero, and [`CoreError::SignalTooShort`] if the matrix
/// does not contain strictly more rows than `window_length`.
///
/// # Example
///
/// ```
/// use seizure_core::algorithm::{posteriori_detect, DetectorConfig};
/// use seizure_features::FeatureMatrix;
///
/// # fn main() -> Result<(), seizure_core::CoreError> {
/// // 30 windows with one feature; rows 10..15 are strongly different.
/// let rows: Vec<Vec<f64>> = (0..30)
///     .map(|i| vec![if (10..15).contains(&i) { 8.0 } else { 0.0 }])
///     .collect();
/// let matrix = FeatureMatrix::from_rows(vec!["f".into()], rows)?;
/// let detection = posteriori_detect(&matrix, 5, &DetectorConfig::default())?;
/// assert_eq!(detection.window_index, 10);
/// # Ok(())
/// # }
/// ```
pub fn posteriori_detect(
    features: &FeatureMatrix,
    window_length: usize,
    config: &DetectorConfig,
) -> Result<Detection, CoreError> {
    if window_length == 0 {
        return Err(CoreError::InvalidParameter {
            name: "window_length",
            reason: "the seizure window must span at least one feature row".to_string(),
        });
    }
    if config.subsample_step == 0 {
        return Err(CoreError::InvalidParameter {
            name: "subsample_step",
            reason: "the subsampling step must be at least 1".to_string(),
        });
    }
    let rows = features.num_windows();
    if rows <= window_length {
        return Err(CoreError::SignalTooShort {
            detail: format!(
                "the feature matrix has {rows} rows but the seizure window alone spans {window_length}"
            ),
        });
    }

    let matrix = if config.normalize {
        normalize_features(features)?
    } else {
        features.clone()
    };

    let distances = match config.implementation {
        Implementation::Reference => {
            reference_distances(&matrix, window_length, config.subsample_step)
        }
        Implementation::Optimized => {
            optimized_distances(&matrix, window_length, config.subsample_step)
        }
    };

    // NaN-safe peak selection with NaN ranked *worst*: a candidate whose
    // distance was poisoned by a NaN feature value must never outrank a
    // finite one. (The former `partial_cmp` fallback to `Equal` let a NaN
    // candidate late in the profile displace the true peak, silently
    // mislabeling the seizure.)
    let window_index = distances
        .iter()
        .enumerate()
        .max_by(|a, b| match (a.1.is_nan(), b.1.is_nan()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (false, false) => a.1.total_cmp(b.1),
        })
        .map(|(i, _)| i)
        .unwrap_or(0);

    Ok(Detection {
        window_index,
        window_length,
        distances,
    })
}

/// Literal transcription of the paper's pseudo-code.
fn reference_distances(matrix: &FeatureMatrix, w_len: usize, step: usize) -> Vec<f64> {
    let rows = matrix.num_windows();
    let features = matrix.num_features();
    let candidates = rows - w_len;
    let norm_outside = ((rows - w_len) as f64 / step as f64).max(1.0);
    let mut distances = Vec::with_capacity(candidates);

    for i in 0..candidates {
        let mut distance_vector = vec![0.0; features];
        for w in 0..w_len {
            let inside = matrix.row(i + w);
            let mut edge = vec![0.0; features];
            let mut k = 0;
            while k < rows {
                if k < i || k >= i + w_len {
                    let outside = matrix.row(k);
                    for f in 0..features {
                        edge[f] += (inside[f] - outside[f]).abs();
                    }
                }
                k += step;
            }
            for f in 0..features {
                distance_vector[f] += edge[f] / norm_outside;
            }
        }
        let norm: f64 = distance_vector
            .iter()
            .map(|v| {
                let v = v / w_len as f64;
                v * v
            })
            .sum::<f64>()
            .sqrt();
        distances.push(norm);
    }
    distances
}

/// Prefix-sum accelerated variant.
///
/// For each feature, the subsampled rows (`0, s, 2s, …`) are sorted once so
/// that `Σ_k |v - X[k]|` over **all** subsampled rows can be answered per query
/// in `O(log L)`. The contribution of subsampled rows that fall *inside* the
/// current window is then subtracted directly (there are at most `W / s + 1` of
/// them), which reproduces the reference result exactly.
fn optimized_distances(matrix: &FeatureMatrix, w_len: usize, step: usize) -> Vec<f64> {
    let rows = matrix.num_windows();
    let features = matrix.num_features();
    let candidates = rows - w_len;
    let norm_outside = ((rows - w_len) as f64 / step as f64).max(1.0);

    // Subsampled row indices (the `k` loop of the pseudo-code).
    let grid: Vec<usize> = (0..rows).step_by(step).collect();

    // Per feature: sorted grid values plus prefix sums.
    struct FeatureIndex {
        sorted: Vec<f64>,
        prefix: Vec<f64>,
    }
    let mut index = Vec::with_capacity(features);
    for f in 0..features {
        // `total_cmp` keeps the prefix-sum index totally ordered even when a
        // corrupted feature column carries NaN (the former `Equal` fallback
        // produced an arbitrarily mis-sorted index, skewing every query).
        let mut sorted: Vec<f64> = grid.iter().map(|&k| matrix.get(k, f)).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut prefix = Vec::with_capacity(sorted.len() + 1);
        prefix.push(0.0);
        for v in &sorted {
            prefix.push(prefix.last().unwrap() + v);
        }
        index.push(FeatureIndex { sorted, prefix });
    }

    // Σ over all grid rows of |v - x| for one feature, in O(log G).
    let sum_abs_all = |f: usize, v: f64| -> f64 {
        let fi = &index[f];
        let n = fi.sorted.len();
        let pos = fi.sorted.partition_point(|x| *x <= v);
        let below = v * pos as f64 - fi.prefix[pos];
        let above = (fi.prefix[n] - fi.prefix[pos]) - v * (n - pos) as f64;
        below + above
    };

    let mut distances = Vec::with_capacity(candidates);
    for i in 0..candidates {
        // Grid rows inside the window [i, i + w_len).
        let first_inside = i.div_ceil(step) * step;
        let inside_grid: Vec<usize> = (first_inside..i + w_len).step_by(step).collect();

        let mut distance_vector = vec![0.0; features];
        for w in 0..w_len {
            let inside = matrix.row(i + w);
            for f in 0..features {
                let v = inside[f];
                let mut total = sum_abs_all(f, v);
                for &k in &inside_grid {
                    total -= (v - matrix.get(k, f)).abs();
                }
                distance_vector[f] += total / norm_outside;
            }
        }
        let norm: f64 = distance_vector
            .iter()
            .map(|v| {
                let v = v / w_len as f64;
                v * v
            })
            .sum::<f64>()
            .sqrt();
        distances.push(norm);
    }
    distances
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_with_anomaly(
        rows: usize,
        anomaly: std::ops::Range<usize>,
        strength: f64,
    ) -> FeatureMatrix {
        let data: Vec<Vec<f64>> = (0..rows)
            .map(|i| {
                let base = (i as f64 * 0.7).sin() * 0.3;
                let spike = if anomaly.contains(&i) { strength } else { 0.0 };
                vec![
                    base + spike,
                    base * 0.5 - spike,
                    (i as f64 * 0.31).cos() * 0.2,
                ]
            })
            .collect();
        FeatureMatrix::from_rows(vec!["a".into(), "b".into(), "c".into()], data).unwrap()
    }

    #[test]
    fn detects_an_obvious_anomaly() {
        let matrix = matrix_with_anomaly(120, 40..60, 6.0);
        let detection = posteriori_detect(&matrix, 20, &DetectorConfig::default()).unwrap();
        assert!((38..=42).contains(&detection.window_index));
        assert_eq!(detection.labeled_rows().len(), 20);
        assert!(detection.peak_distance() > 0.0);
        assert_eq!(detection.distances.len(), 100);
    }

    #[test]
    fn reference_and_optimized_agree() {
        for (rows, w, step) in [(60, 10, 4), (75, 13, 4), (50, 7, 3), (64, 16, 1)] {
            let matrix = matrix_with_anomaly(rows, (rows / 3)..(rows / 3 + w), 4.0);
            let reference = posteriori_detect(
                &matrix,
                w,
                &DetectorConfig {
                    implementation: Implementation::Reference,
                    subsample_step: step,
                    normalize: true,
                },
            )
            .unwrap();
            let optimized = posteriori_detect(
                &matrix,
                w,
                &DetectorConfig {
                    implementation: Implementation::Optimized,
                    subsample_step: step,
                    normalize: true,
                },
            )
            .unwrap();
            assert_eq!(reference.window_index, optimized.window_index);
            for (a, b) in reference.distances.iter().zip(optimized.distances.iter()) {
                assert!((a - b).abs() < 1e-9, "rows={rows} w={w} step={step}");
            }
        }
    }

    /// Regression for the NaN-unsafe peak selection: a NaN feature value
    /// poisons the distance of every candidate window containing it, and
    /// those candidates sit *after* the true peak here — the former
    /// `partial_cmp().unwrap_or(Equal)` fold let the last NaN candidate
    /// displace the real seizure window. NaN must rank worst, on both
    /// implementations, without panicking.
    #[test]
    fn nan_features_never_win_the_detection() {
        let mut data: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![if (10..15).contains(&i) { 8.0 } else { 0.0 }])
            .collect();
        // An odd row index keeps the NaN off the subsample grid (step 2), so
        // only the windows *containing* it go NaN; the grid sums stay finite
        // for everything else.
        data[25][0] = f64::NAN;
        let matrix = FeatureMatrix::from_rows(vec!["f".into()], data).unwrap();
        for implementation in [Implementation::Reference, Implementation::Optimized] {
            let detection = posteriori_detect(
                &matrix,
                5,
                &DetectorConfig {
                    implementation,
                    subsample_step: 2,
                    normalize: false,
                },
            )
            .unwrap();
            assert_eq!(detection.window_index, 10, "{implementation:?}");
            assert!(
                detection.peak_distance().is_finite(),
                "{implementation:?}: a NaN candidate won the peak"
            );
            // The poisoned candidates are really NaN — the selection, not
            // luck, kept them out.
            assert!(detection.distances[21..25].iter().all(|d| d.is_nan()));
        }
    }

    #[test]
    fn works_without_normalization() {
        let matrix = matrix_with_anomaly(80, 30..40, 5.0);
        let config = DetectorConfig {
            normalize: false,
            ..DetectorConfig::default()
        };
        let detection = posteriori_detect(&matrix, 10, &config).unwrap();
        assert!((28..=32).contains(&detection.window_index));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let matrix = matrix_with_anomaly(50, 10..20, 3.0);
        assert!(posteriori_detect(&matrix, 0, &DetectorConfig::default()).is_err());
        assert!(posteriori_detect(&matrix, 50, &DetectorConfig::default()).is_err());
        assert!(posteriori_detect(&matrix, 60, &DetectorConfig::default()).is_err());
        let bad_step = DetectorConfig {
            subsample_step: 0,
            ..DetectorConfig::default()
        };
        assert!(posteriori_detect(&matrix, 10, &bad_step).is_err());
    }

    #[test]
    fn anomaly_at_the_very_start_and_end() {
        let start = matrix_with_anomaly(90, 0..15, 5.0);
        let det = posteriori_detect(&start, 15, &DetectorConfig::default()).unwrap();
        assert!(det.window_index <= 2);

        let end = matrix_with_anomaly(90, 75..90, 5.0);
        let det = posteriori_detect(&end, 15, &DetectorConfig::default()).unwrap();
        assert!(det.window_index >= 72);
    }

    #[test]
    fn distance_profile_peaks_at_the_anomaly_and_decays_away() {
        let matrix = matrix_with_anomaly(150, 60..80, 5.0);
        let det = posteriori_detect(&matrix, 20, &DetectorConfig::default()).unwrap();
        let far_away = det.distances[5];
        let at_peak = det.distances[det.window_index];
        assert!(at_peak > 2.0 * far_away);
    }

    #[test]
    fn window_length_one_is_supported() {
        let matrix = matrix_with_anomaly(40, 20..21, 8.0);
        let det = posteriori_detect(&matrix, 1, &DetectorConfig::default()).unwrap();
        assert_eq!(det.window_index, 20);
    }

    #[test]
    fn normalization_makes_detection_scale_invariant() {
        // Multiply one feature by a huge constant: with normalization the
        // detected position must not change.
        let matrix = matrix_with_anomaly(100, 40..55, 4.0);
        let mut scaled_rows = matrix.to_rows();
        for row in &mut scaled_rows {
            row[2] *= 1e6;
        }
        let scaled =
            FeatureMatrix::from_rows(matrix.feature_names().to_vec(), scaled_rows).unwrap();
        let a = posteriori_detect(&matrix, 15, &DetectorConfig::default()).unwrap();
        let b = posteriori_detect(&scaled, 15, &DetectorConfig::default()).unwrap();
        assert_eq!(a.window_index, b.window_index);
    }
}
