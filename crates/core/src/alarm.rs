//! Alarm generation and event-level evaluation.
//!
//! The real-time detector classifies individual 4-second windows, but what the
//! wearable actually does is *raise alerts to caregivers* (paper §I). This
//! module turns per-window decisions into alarm events with the usual
//! embedded-detector post-processing — a window has to be positive for a
//! minimum number of consecutive windows before an alarm fires, and after an
//! alarm the detector stays silent for a refractory period — and evaluates the
//! result at the event level: was the seizure detected, with what latency, and
//! how many false alarms per hour were produced.

use crate::error::CoreError;
use crate::label::SeizureLabel;

/// Configuration of the alarm post-processing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlarmConfig {
    /// Number of consecutive positive windows required before an alarm fires.
    pub min_consecutive_windows: usize,
    /// Silent (refractory) period after an alarm, in seconds.
    pub refractory_secs: f64,
    /// Time between consecutive windows in seconds (the feature-extraction
    /// step; 1 s in the paper's pipeline).
    pub window_step_secs: f64,
}

impl Default for AlarmConfig {
    fn default() -> Self {
        Self {
            min_consecutive_windows: 3,
            refractory_secs: 60.0,
            window_step_secs: 1.0,
        }
    }
}

impl AlarmConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the consecutive-window count
    /// is zero, or the refractory period / window step is negative or NaN.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.min_consecutive_windows == 0 {
            return Err(CoreError::InvalidParameter {
                name: "min_consecutive_windows",
                reason: "at least one positive window is required to raise an alarm".to_string(),
            });
        }
        if self.refractory_secs < 0.0 || self.refractory_secs.is_nan() {
            return Err(CoreError::InvalidParameter {
                name: "refractory_secs",
                reason: format!("must be non-negative, got {}", self.refractory_secs),
            });
        }
        if self.window_step_secs <= 0.0 || self.window_step_secs.is_nan() {
            return Err(CoreError::InvalidParameter {
                name: "window_step_secs",
                reason: format!("must be positive, got {}", self.window_step_secs),
            });
        }
        Ok(())
    }
}

/// One alarm raised by the post-processing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alarm {
    /// Time of the alarm in seconds from the start of the recording (the time
    /// of the window that completed the consecutive-positive run).
    pub time_secs: f64,
    /// Index of that window in the per-window decision vector.
    pub window_index: usize,
}

/// Converts per-window decisions into alarm events.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if the configuration is invalid.
///
/// # Example
///
/// ```
/// use seizure_core::alarm::{alarms_from_windows, AlarmConfig};
///
/// # fn main() -> Result<(), seizure_core::CoreError> {
/// let mut windows = vec![false; 60];
/// for w in windows.iter_mut().take(25).skip(20) {
///     *w = true;
/// }
/// let alarms = alarms_from_windows(&windows, &AlarmConfig::default())?;
/// assert_eq!(alarms.len(), 1);
/// assert_eq!(alarms[0].window_index, 22); // third consecutive positive window
/// # Ok(())
/// # }
/// ```
pub fn alarms_from_windows(
    window_decisions: &[bool],
    config: &AlarmConfig,
) -> Result<Vec<Alarm>, CoreError> {
    config.validate()?;
    let mut alarms = Vec::new();
    let mut run = 0usize;
    let mut silent_until = f64::NEG_INFINITY;
    for (i, &positive) in window_decisions.iter().enumerate() {
        let t = i as f64 * config.window_step_secs;
        if t < silent_until {
            run = 0;
            continue;
        }
        if positive {
            run += 1;
            if run >= config.min_consecutive_windows {
                alarms.push(Alarm {
                    time_secs: t,
                    window_index: i,
                });
                silent_until = t + config.refractory_secs;
                run = 0;
            }
        } else {
            run = 0;
        }
    }
    Ok(alarms)
}

/// Event-level evaluation of a recording containing a single (known) seizure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventReport {
    /// `true` if at least one alarm fell inside the seizure (extended by the
    /// tolerance).
    pub detected: bool,
    /// Latency in seconds from the seizure onset to the first alarm inside the
    /// seizure (`None` if the seizure was missed).
    pub detection_latency_secs: Option<f64>,
    /// Number of alarms outside the seizure.
    pub false_alarms: usize,
    /// False alarms normalized per hour of recording.
    pub false_alarms_per_hour: f64,
    /// Total number of alarms raised.
    pub total_alarms: usize,
}

/// Evaluates a set of alarms against the ground-truth seizure of a recording
/// of `duration_secs` seconds. Alarms within `tolerance_secs` of the seizure
/// boundaries still count as detections (a small tolerance is standard for
/// event-based seizure-detection scoring).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if the duration is not positive or
/// the tolerance is negative.
pub fn evaluate_events(
    alarms: &[Alarm],
    truth: &SeizureLabel,
    duration_secs: f64,
    tolerance_secs: f64,
) -> Result<EventReport, CoreError> {
    if duration_secs <= 0.0 || duration_secs.is_nan() {
        return Err(CoreError::InvalidParameter {
            name: "duration_secs",
            reason: format!("must be positive, got {duration_secs}"),
        });
    }
    if tolerance_secs < 0.0 || tolerance_secs.is_nan() {
        return Err(CoreError::InvalidParameter {
            name: "tolerance_secs",
            reason: format!("must be non-negative, got {tolerance_secs}"),
        });
    }
    let lo = (truth.onset_secs() - tolerance_secs).max(0.0);
    let hi = truth.offset_secs() + tolerance_secs;
    let mut detected = false;
    let mut latency = None;
    let mut false_alarms = 0usize;
    for alarm in alarms {
        if alarm.time_secs >= lo && alarm.time_secs <= hi {
            if !detected {
                detected = true;
                latency = Some((alarm.time_secs - truth.onset_secs()).max(0.0));
            }
        } else {
            false_alarms += 1;
        }
    }
    Ok(EventReport {
        detected,
        detection_latency_secs: latency,
        false_alarms,
        false_alarms_per_hour: false_alarms as f64 / (duration_secs / 3600.0),
        total_alarms: alarms.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AlarmConfig {
        AlarmConfig::default()
    }

    #[test]
    fn config_validation() {
        assert!(config().validate().is_ok());
        assert!(AlarmConfig {
            min_consecutive_windows: 0,
            ..config()
        }
        .validate()
        .is_err());
        assert!(AlarmConfig {
            refractory_secs: -1.0,
            ..config()
        }
        .validate()
        .is_err());
        assert!(AlarmConfig {
            window_step_secs: 0.0,
            ..config()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn no_alarm_without_enough_consecutive_windows() {
        // Isolated positives and pairs never reach the 3-window requirement.
        let windows = vec![
            false, true, false, true, true, false, false, true, false, false,
        ];
        let alarms = alarms_from_windows(&windows, &config()).unwrap();
        assert!(alarms.is_empty());
    }

    #[test]
    fn alarm_fires_after_three_consecutive_positives() {
        let mut windows = vec![false; 30];
        for w in windows.iter_mut().take(13).skip(10) {
            *w = true;
        }
        let alarms = alarms_from_windows(&windows, &config()).unwrap();
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].window_index, 12);
        assert_eq!(alarms[0].time_secs, 12.0);
    }

    #[test]
    fn refractory_period_suppresses_repeat_alarms() {
        // A long positive run fires once, then stays silent for 60 s.
        let windows = vec![true; 50];
        let alarms = alarms_from_windows(&windows, &config()).unwrap();
        assert_eq!(alarms.len(), 1);

        // With a short refractory period the same run fires repeatedly.
        let short = AlarmConfig {
            refractory_secs: 5.0,
            ..config()
        };
        let alarms = alarms_from_windows(&windows, &short).unwrap();
        assert!(alarms.len() > 3);
    }

    #[test]
    fn evaluation_detects_seizure_and_counts_false_alarms() {
        let truth = SeizureLabel::new(100.0, 160.0).unwrap();
        let alarms = vec![
            Alarm {
                time_secs: 30.0,
                window_index: 30,
            },
            Alarm {
                time_secs: 105.0,
                window_index: 105,
            },
            Alarm {
                time_secs: 300.0,
                window_index: 300,
            },
        ];
        let report = evaluate_events(&alarms, &truth, 3600.0, 5.0).unwrap();
        assert!(report.detected);
        assert_eq!(report.detection_latency_secs, Some(5.0));
        assert_eq!(report.false_alarms, 2);
        assert_eq!(report.total_alarms, 3);
        assert!((report.false_alarms_per_hour - 2.0).abs() < 1e-12);
    }

    #[test]
    fn evaluation_reports_missed_seizure() {
        let truth = SeizureLabel::new(100.0, 160.0).unwrap();
        let alarms = vec![Alarm {
            time_secs: 500.0,
            window_index: 500,
        }];
        let report = evaluate_events(&alarms, &truth, 1800.0, 5.0).unwrap();
        assert!(!report.detected);
        assert_eq!(report.detection_latency_secs, None);
        assert_eq!(report.false_alarms, 1);
        assert!((report.false_alarms_per_hour - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tolerance_extends_the_detection_window() {
        let truth = SeizureLabel::new(100.0, 160.0).unwrap();
        let alarms = vec![Alarm {
            time_secs: 97.0,
            window_index: 97,
        }];
        // Without tolerance this is a false alarm...
        let strict = evaluate_events(&alarms, &truth, 3600.0, 0.0).unwrap();
        assert!(!strict.detected);
        assert_eq!(strict.false_alarms, 1);
        // ...with a 5-second tolerance it counts as a (zero-latency) detection.
        let tolerant = evaluate_events(&alarms, &truth, 3600.0, 5.0).unwrap();
        assert!(tolerant.detected);
        assert_eq!(tolerant.detection_latency_secs, Some(0.0));
        assert_eq!(tolerant.false_alarms, 0);
    }

    #[test]
    fn evaluation_validates_inputs() {
        let truth = SeizureLabel::new(10.0, 20.0).unwrap();
        assert!(evaluate_events(&[], &truth, 0.0, 1.0).is_err());
        assert!(evaluate_events(&[], &truth, 100.0, -1.0).is_err());
        let empty = evaluate_events(&[], &truth, 100.0, 1.0).unwrap();
        assert!(!empty.detected);
        assert_eq!(empty.total_alarms, 0);
    }
}
