//! Reusable multi-record extraction state.
//!
//! The detect and labeling paths both turn a record into a [`FeatureMatrix`]
//! through the parallel batch extraction engine. In the seed implementation
//! the flat matrix buffer and every worker's FFT/wavelet scratch were rebuilt
//! per record; a [`FeatureWorkspace`] keeps both alive so a whole cohort of
//! records — an evaluation sweep, a labeling experiment, the self-learning
//! training loop — runs on one matrix allocation and one pooled scratch set.

use crate::realtime::QualityVerdict;
use seizure_features::matrix::FeatureMatrix;
use seizure_features::scratch::FeatureScratchPool;

/// One matrix buffer plus one scratch pool, reused across all records a
/// caller processes.
///
/// # Example
///
/// ```no_run
/// use seizure_core::labeler::{LabelerConfig, PosterioriLabeler};
/// use seizure_core::workspace::FeatureWorkspace;
/// use seizure_data::cohort::Cohort;
/// use seizure_data::sampler::SampleConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cohort = Cohort::chb_mit_like(1);
/// let config = SampleConfig::fast_test()?;
/// let labeler = PosterioriLabeler::new(LabelerConfig::default());
/// let mut ws = FeatureWorkspace::new();
/// for seizure in 0..3 {
///     let record = cohort.sample_record(0, seizure, &config, 0)?;
///     let w = cohort.average_seizure_duration(0)?;
///     // Every record reuses the same matrix buffer and scratch pool.
///     let label = labeler.label_record_with(&record, w, &mut ws)?;
///     println!("onset = {:.1} s", label.onset_secs());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct FeatureWorkspace {
    pub(crate) matrix: FeatureMatrix,
    pub(crate) pool: FeatureScratchPool,
    /// Per-window class predictions of the last detect/predict call routed
    /// through this workspace (refilled in place, never re-grown per record).
    pub(crate) predictions: Vec<bool>,
    /// Flat staging buffer for row-vector prediction inputs
    /// ([`RealTimeDetector::predict_rows_with`](crate::realtime::RealTimeDetector::predict_rows_with)).
    pub(crate) row_buf: Vec<f64>,
    /// Per-window quality indicator matrix of the last gated detect /
    /// calibration call (separate from `matrix` so the quality columns
    /// survive the feature extraction that follows them).
    pub(crate) quality: FeatureMatrix,
    /// Per-window quality verdicts aligned with `predictions`.
    pub(crate) verdicts: Vec<QualityVerdict>,
    /// Gain-corrected channel copies produced by the quality gate's slow
    /// AGC; left empty whenever the correction is exactly unity, so the
    /// clean path never copies the signal.
    pub(crate) corrected_f7t3: Vec<f64>,
    /// See `corrected_f7t3`.
    pub(crate) corrected_f8t4: Vec<f64>,
}

impl FeatureWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The workspace's feature matrix as the last operation left it. After
    /// an extraction call this holds raw features; the detect/evaluate paths
    /// standardize the buffer in place afterwards, so read rows out before
    /// classifying (or re-extract) when the raw values matter.
    pub fn matrix(&self) -> &FeatureMatrix {
        &self.matrix
    }

    /// The per-window predictions of the last
    /// [`RealTimeDetector::detect_into`](crate::realtime::RealTimeDetector::detect_into)
    /// or `predict_rows_with` call that used this workspace.
    pub fn predictions(&self) -> &[bool] {
        &self.predictions
    }

    /// The per-window quality verdicts of the last
    /// [`RealTimeDetector::detect_into`](crate::realtime::RealTimeDetector::detect_into)
    /// call routed through this workspace. Aligned with
    /// [`FeatureWorkspace::predictions`] when the detector's quality gate is
    /// enabled; empty when it is off.
    pub fn verdicts(&self) -> &[QualityVerdict] {
        &self.verdicts
    }

    /// The per-window quality indicator matrix of the last gated detect or
    /// calibration call (see [`seizure_features::quality`] for the column
    /// layout).
    pub fn quality(&self) -> &FeatureMatrix {
        &self.quality
    }
}
