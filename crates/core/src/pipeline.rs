//! The self-learning pipeline (paper §III, Fig. 1).
//!
//! The loop closes as follows: a seizure is missed by the real-time detector,
//! the patient confirms it within the next hour, the a-posteriori algorithm
//! labels the last hour of signal, the labeled data is added to the patient's
//! personalized training set and the real-time detector is retrained. With
//! every missed seizure the detector becomes more robust.

use crate::algorithm::{DetectorConfig, Implementation};
use crate::error::CoreError;
use crate::label::SeizureLabel;
use crate::labeler::{LabelerConfig, PosterioriLabeler};
use crate::realtime::{balanced_indices, QualityVerdict, RealTimeDetector, RealTimeDetectorConfig};
use crate::workspace::FeatureWorkspace;
use seizure_data::sampler::EegRecord;
use seizure_ml::metrics::ConfusionMatrix;
use seizure_ml::persist::journal::{
    self, CompactionPolicy, DeltaSave, DeltaState, JournalReplayReport, JournalWriter,
};
use seizure_ml::persist::store::{Flash, FlashGeometry, FlashStore, StoreSave};
use seizure_ml::persist::{PersistError, SnapshotKind, SnapshotReader, SnapshotWriter};

/// Where the seizure labels used for training come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LabelSource {
    /// Labels produced by the a-posteriori minimally-supervised algorithm
    /// (the paper's proposal).
    #[default]
    Algorithm,
    /// Expert (ground-truth) labels — the paper's baseline for Fig. 4.
    Expert,
}

/// Evaluation summary of a trained pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SelfLearningReport {
    /// Per-window sensitivity of the real-time detector.
    pub sensitivity: f64,
    /// Per-window specificity of the real-time detector.
    pub specificity: f64,
    /// Geometric mean of sensitivity and specificity (the paper's Fig. 4
    /// metric).
    pub geometric_mean: f64,
    /// Number of evaluation windows.
    pub windows: usize,
}

impl SelfLearningReport {
    /// Builds a report from a confusion matrix.
    pub fn from_confusion(cm: &ConfusionMatrix) -> Self {
        Self {
            sensitivity: cm.sensitivity(),
            specificity: cm.specificity(),
            geometric_mean: cm.geometric_mean(),
            windows: cm.total(),
        }
    }
}

/// The self-learning pipeline: a-posteriori labeler + personalized training
/// set + real-time detector.
///
/// # Example
///
/// ```no_run
/// use seizure_core::pipeline::{LabelSource, SelfLearningPipeline};
/// use seizure_core::labeler::LabelerConfig;
/// use seizure_core::realtime::RealTimeDetectorConfig;
/// use seizure_data::cohort::Cohort;
/// use seizure_data::sampler::SampleConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cohort = Cohort::chb_mit_like(1);
/// let config = SampleConfig::fast_test()?;
/// let mut pipeline = SelfLearningPipeline::new(
///     LabelerConfig::default(),
///     RealTimeDetectorConfig::default(),
/// );
///
/// // Two missed seizures are reported by the patient and learned from.
/// for seizure in 0..2 {
///     let record = cohort.sample_record(0, seizure, &config, 0)?;
///     let w = cohort.average_seizure_duration(0)?;
///     pipeline.observe_missed_seizure(&record, w, LabelSource::Algorithm)?;
/// }
/// assert_eq!(pipeline.num_seizures_collected(), 2);
///
/// // Evaluate the personalized detector on a held-out seizure.
/// let held_out = cohort.sample_record(0, 2, &config, 1)?;
/// let report = pipeline.evaluate(&held_out)?;
/// println!("geometric mean = {:.3}", report.geometric_mean);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SelfLearningPipeline {
    labeler: PosterioriLabeler,
    detector: RealTimeDetector,
    /// Staging buffers for one record's balanced window selection, reused
    /// across records (the accumulated training pool itself lives inside the
    /// detector's incremental trainer).
    batch_rows: Vec<f64>,
    batch_labels: Vec<bool>,
    num_seizures: usize,
    /// Records the quality gate refused to learn from (too many `Reject`
    /// windows, or a whole class rejected): they never reach the labeler or
    /// the incremental pool.
    num_quarantined: usize,
    produced_labels: Vec<SeizureLabel>,
    /// Extraction state reused across every record the pipeline touches.
    workspace: FeatureWorkspace,
    /// Delta-journal state armed by [`SelfLearningPipeline::save_delta`] /
    /// [`SelfLearningPipeline::resume_with_journal`]; `None` while the
    /// pipeline persists through full snapshots only. The pipeline keeps
    /// its own journal rather than arming the detector's: each entry
    /// additionally carries the produced seizure label as its annotation,
    /// so a resume also restores the seizure counter and label history.
    delta: Option<DeltaState>,
}

/// Fraction of `Reject` windows above which a reported record is quarantined
/// outright instead of being labeled and learned from. A quarter of the
/// record is far beyond what transient artifacts produce on acceptable
/// signal, while records degraded by sustained artifact (saturation, severe
/// wander, electrode dropout) reject the majority of their windows.
pub const QUARANTINE_REJECT_FRACTION: f64 = 0.25;

/// Length of the per-entry annotation: the produced label's onset and offset
/// plus the quality gate's post-record amplitude reference (two per-channel
/// log-std references and the calibration weight), five little-endian `f64`s
/// in total. Carrying the gate reference per entry keeps a journal-replayed
/// resume state-identical to the pipeline that never powered down even
/// though gate calibration advances with every learned record.
const LABEL_ANNOTATION_LEN: usize = 40;

fn encode_annotation(
    label: &SeizureLabel,
    gate_ref: [f64; 2],
    gate_weight: f64,
) -> [u8; LABEL_ANNOTATION_LEN] {
    let mut bytes = [0u8; LABEL_ANNOTATION_LEN];
    bytes[..8].copy_from_slice(&label.onset_secs().to_le_bytes());
    bytes[8..16].copy_from_slice(&label.offset_secs().to_le_bytes());
    bytes[16..24].copy_from_slice(&gate_ref[0].to_le_bytes());
    bytes[24..32].copy_from_slice(&gate_ref[1].to_le_bytes());
    bytes[32..].copy_from_slice(&gate_weight.to_le_bytes());
    bytes
}

fn decode_annotation(
    annotation: &[u8],
    index: usize,
) -> Result<(SeizureLabel, [f64; 2], f64), PersistError> {
    let bytes: [u8; LABEL_ANNOTATION_LEN] =
        annotation.try_into().map_err(|_| PersistError::Corrupted {
            detail: format!(
                "journal entry {index} annotates {} bytes, expected a {LABEL_ANNOTATION_LEN}-byte \
                 seizure label plus gate reference",
                annotation.len()
            ),
        })?;
    let f = |at: usize| f64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let label = SeizureLabel::new(f(0), f(8)).map_err(|e| PersistError::Corrupted {
        detail: format!("journal entry {index} annotates a label that does not reconstruct: {e}"),
    })?;
    let gate_ref = [f(16), f(24)];
    let gate_weight = f(32);
    if !gate_ref.iter().all(|v| v.is_finite()) || !gate_weight.is_finite() || gate_weight < 0.0 {
        return Err(PersistError::Corrupted {
            detail: format!("journal entry {index} annotates a non-finite gate reference"),
        });
    }
    Ok((label, gate_ref, gate_weight))
}

impl SelfLearningPipeline {
    /// Creates an empty pipeline.
    pub fn new(labeler_config: LabelerConfig, detector_config: RealTimeDetectorConfig) -> Self {
        Self {
            labeler: PosterioriLabeler::new(labeler_config),
            detector: RealTimeDetector::new(detector_config),
            batch_rows: Vec::new(),
            batch_labels: Vec::new(),
            num_seizures: 0,
            num_quarantined: 0,
            produced_labels: Vec::new(),
            workspace: FeatureWorkspace::new(),
            delta: None,
        }
    }

    /// The a-posteriori labeler used by the pipeline.
    pub fn labeler(&self) -> &PosterioriLabeler {
        &self.labeler
    }

    /// The (possibly still untrained) real-time detector.
    pub fn detector(&self) -> &RealTimeDetector {
        &self.detector
    }

    /// Number of missed seizures that have been labeled and learned from.
    pub fn num_seizures_collected(&self) -> usize {
        self.num_seizures
    }

    /// Number of reported records the quality gate quarantined instead of
    /// learning from: their per-window verdicts contained too many `Reject`
    /// windows (hostile signal), so they never reached the a-posteriori
    /// labeler or the incremental training pool.
    pub fn num_quarantined(&self) -> usize {
        self.num_quarantined
    }

    /// Size of the accumulated personalized training set, in windows.
    pub fn training_windows(&self) -> usize {
        self.detector
            .incremental_trainer()
            .map_or(0, |t| t.num_samples())
    }

    /// The labels produced so far (one per observed missed seizure).
    pub fn produced_labels(&self) -> &[SeizureLabel] {
        &self.produced_labels
    }

    /// Processes one missed seizure: labels the record (with the algorithm or
    /// with the expert annotation, depending on `source`), adds a balanced set
    /// of windows to the personalized training set and retrains the real-time
    /// detector. Returns the label that was used, or `None` when the
    /// detector's quality gate quarantined the record **before the labeler
    /// ran**: a record whose fraction of `Reject` windows exceeds
    /// [`QUARANTINE_REJECT_FRACTION`] carries artifact, not brain signal, and
    /// letting the a-posteriori labeler loose on it would poison the
    /// personalized training set. Quarantined records count in
    /// [`SelfLearningPipeline::num_quarantined`] and change nothing else.
    ///
    /// # Errors
    ///
    /// Propagates labeling, feature-extraction and training failures.
    pub fn observe_missed_seizure(
        &mut self,
        record: &EegRecord,
        average_seizure_secs: f64,
        source: LabelSource,
    ) -> Result<Option<SeizureLabel>, CoreError> {
        if self.quarantine_check(record)? {
            self.num_quarantined += 1;
            return Ok(None);
        }
        let label = match source {
            LabelSource::Algorithm => self.labeler.label_record(record, average_seizure_secs)?,
            LabelSource::Expert => {
                SeizureLabel::new(record.annotation().onset(), record.annotation().offset())?
            }
        };
        self.learn_record(record, &label)?;
        Ok(Some(label))
    }

    /// Adds one labeled record to the personalized training set and retrains
    /// the detector. This is the low-level entry point used by
    /// [`SelfLearningPipeline::observe_missed_seizure`]; it can also be called
    /// directly with an externally produced label.
    ///
    /// Runs entirely on the flat batch engine and the incremental retraining
    /// engine: the record's windows are extracted into the pipeline's
    /// reusable workspace, a balanced selection is staged into the flat batch
    /// buffers, and [`RealTimeDetector::retrain_incremental`] appends it to
    /// the detector's growing pool — sorting only the block-local presorted
    /// runs the batch touches and refitting only the trees whose bootstrap
    /// pools the new windows touched, instead of paying a full
    /// `train_forest` per missed seizure.
    ///
    /// The seizure counter follows the label's **actual seizure content**: a
    /// label that marks no window of this record as seizure (too short for
    /// the half-window overlap rule, or lying outside the recording) adds
    /// nothing to the training pool and does not advance
    /// [`SelfLearningPipeline::num_seizures_collected`] — the call is a
    /// no-op, not an error, so external label producers can stream
    /// uncurated labels through this entry point.
    ///
    /// Like [`SelfLearningPipeline::observe_missed_seizure`], this entry
    /// point is quarantine-aware: a record the quality gate rejects outright
    /// is counted in [`SelfLearningPipeline::num_quarantined`] and learned
    /// from not at all, and individual `Reject` windows of an accepted
    /// record are excluded from the balanced selection. With the gate
    /// disabled in the detector's configuration, behavior is exactly the
    /// pre-gate pipeline's.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction and training failures.
    pub fn add_training_record(
        &mut self,
        record: &EegRecord,
        label: &SeizureLabel,
    ) -> Result<(), CoreError> {
        if self.quarantine_check(record)? {
            self.num_quarantined += 1;
            return Ok(());
        }
        self.learn_record(record, label)
    }

    /// Assesses the record's per-window quality into the workspace (gate
    /// enabled only) and reports whether the record as a whole must be
    /// quarantined. On `Ok(false)` with the gate enabled, the workspace's
    /// quality matrix and verdicts are left filled for this record, ready
    /// for [`SelfLearningPipeline::learn_record`].
    fn quarantine_check(&mut self, record: &EegRecord) -> Result<bool, CoreError> {
        if !self.detector.config().quality_gate {
            return Ok(false);
        }
        self.detector
            .assess_quality_into(record.signal(), &mut self.workspace)?;
        let verdicts = &self.workspace.verdicts;
        if verdicts.is_empty() {
            return Ok(false);
        }
        let rejected = verdicts
            .iter()
            .filter(|&&v| v == QualityVerdict::Reject)
            .count();
        Ok(rejected as f64 > QUARANTINE_REJECT_FRACTION * verdicts.len() as f64)
    }

    /// The staging and retraining core shared by the two public entry
    /// points, run after the record has passed the quarantine check.
    fn learn_record(&mut self, record: &EegRecord, label: &SeizureLabel) -> Result<(), CoreError> {
        let labels = self.detector.build_training_windows_with(
            record.signal(),
            label,
            &mut self.workspace,
        )?;
        if !labels.iter().any(|&l| l) {
            return Ok(());
        }
        // The quarantine check left this record's verdicts in the workspace
        // (feature extraction fills only the feature matrix); the gate both
        // calibrates its amplitude reference from the record's clean
        // seizure-free windows and strikes `Reject` windows from the
        // balanced selection below.
        let gated =
            self.detector.config().quality_gate && self.workspace.verdicts.len() == labels.len();
        if gated {
            self.detector.calibrate_from_quality(
                &self.workspace.quality,
                &self.workspace.verdicts,
                &labels,
            );
        }
        let eligible: Vec<usize> = if gated {
            (0..labels.len())
                .filter(|&w| self.workspace.verdicts[w] != QualityVerdict::Reject)
                .collect()
        } else {
            (0..labels.len()).collect()
        };
        let eligible_labels: Vec<bool> = eligible.iter().map(|&w| labels[w]).collect();
        if gated && (!eligible_labels.iter().any(|&l| l) || eligible_labels.iter().all(|&l| l)) {
            // The gate struck out one whole class: there is nothing balanced
            // left to learn, so the record is quarantined rather than erroring.
            self.num_quarantined += 1;
            return Ok(());
        }
        let selected = balanced_indices(&eligible_labels)?;
        let matrix = self.workspace.matrix();
        let num_features = matrix.num_features();
        self.batch_rows.clear();
        self.batch_labels.clear();
        self.batch_rows.reserve(selected.len() * num_features);
        // `balanced_indices` returns every positive followed by the sampled
        // negatives; staged in that order a long seizure (more positive
        // windows than `block_size`) would fill whole ownership blocks of
        // the incremental pool with one class. Spreading the smaller class
        // evenly through the larger keeps single-class runs at the class
        // ratio instead of the full class size, so blocks stay mixed.
        let num_pos = eligible_labels.iter().filter(|&&l| l).count();
        let (pos, neg) = selected.split_at(num_pos.min(selected.len()));
        let (mut p, mut n) = (0usize, 0usize);
        while p < pos.len() || n < neg.len() {
            // Proportional merge: advance whichever class lags its share.
            let pick_pos = n >= neg.len() || (p < pos.len() && p * neg.len() <= n * pos.len());
            let i = if pick_pos {
                p += 1;
                pos[p - 1]
            } else {
                n += 1;
                neg[n - 1]
            };
            self.batch_rows.extend_from_slice(matrix.row(eligible[i]));
            self.batch_labels.push(eligible_labels[i]);
        }
        self.detector
            .retrain_incremental(&self.batch_rows, num_features, &self.batch_labels)?;
        self.num_seizures += 1;
        self.produced_labels.push(*label);
        // With delta persistence armed, journal the staged batch together
        // with the produced label and the gate's post-record amplitude
        // reference, so the next `save_delta` appends O(batch) bytes and a
        // resume restores the counter, the label history and the gate
        // calibration.
        if let Some(delta) = &mut self.delta {
            let gate = self.detector.quality_gate();
            let annotation =
                encode_annotation(label, gate.reference_log_std(), gate.calibration_weight());
            delta.writer.append_with(
                &self.batch_rows,
                num_features,
                &self.batch_labels,
                &annotation,
            )?;
        }
        Ok(())
    }

    /// Serializes the pipeline's full persistent state — labeler
    /// configuration, the detector (model, statistics or incremental pool;
    /// see [`RealTimeDetector::save_state`]), the seizure counter and every
    /// produced label — into the versioned binary snapshot format of
    /// [`seizure_ml::persist`]. The extraction workspace and the batch
    /// staging buffers are scratch and are not stored; a resumed pipeline
    /// regrows them on first use.
    pub fn save(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        let labeler = self.labeler.config();
        w.f64(labeler.window_secs);
        w.f64(labeler.overlap);
        w.usize(labeler.detector.subsample_step);
        w.u8(match labeler.detector.implementation {
            Implementation::Reference => 0,
            Implementation::Optimized => 1,
        });
        w.bool(labeler.detector.normalize);
        // The detector (and through it the O(pool) trainer payload) is
        // nested in place — lengths and checksums are back-patched instead
        // of memcpying separately finished child envelopes.
        let child = w.begin_nested(SnapshotKind::RealTimeDetector);
        self.detector.write_state_body(&mut w);
        w.end_nested(child);
        w.usize(self.num_seizures);
        w.usize(self.num_quarantined);
        w.usize(self.produced_labels.len());
        for label in &self.produced_labels {
            w.f64(label.onset_secs());
            w.f64(label.offset_secs());
        }
        w.finish(SnapshotKind::SelfLearningPipeline)
    }

    /// Restores a pipeline from a [`SelfLearningPipeline::save`] snapshot.
    /// The resumed pipeline reproduces the original's detections on any
    /// record and continues learning exactly where it stopped: the next
    /// [`SelfLearningPipeline::observe_missed_seizure`] retrains
    /// node-identically to a pipeline that never shut down.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Persist`] for truncated, foreign, corrupted,
    /// version-mismatched or internally inconsistent snapshots — never a
    /// panic.
    pub fn resume(bytes: &[u8]) -> Result<Self, CoreError> {
        let mut r = SnapshotReader::open(bytes, SnapshotKind::SelfLearningPipeline)?;
        let window_secs = r.f64()?;
        let overlap = r.f64()?;
        let subsample_step = r.usize()?;
        let implementation = match r.u8()? {
            0 => Implementation::Reference,
            1 => Implementation::Optimized,
            marker => {
                return Err(PersistError::Corrupted {
                    detail: format!("unknown labeler implementation marker {marker}"),
                }
                .into())
            }
        };
        let normalize = r.bool()?;
        let detector = RealTimeDetector::load_state(r.nested()?)?;
        let num_seizures = r.usize()?;
        let num_quarantined = r.usize()?;
        let num_labels = r.usize()?;
        let mut produced_labels = Vec::with_capacity(num_labels.min(1024));
        for _ in 0..num_labels {
            let onset = r.f64()?;
            let offset = r.f64()?;
            produced_labels.push(SeizureLabel::new(onset, offset).map_err(|e| {
                PersistError::Corrupted {
                    detail: format!("stored label does not reconstruct: {e}"),
                }
            })?);
        }
        r.finish()?;
        let labeler_config = LabelerConfig {
            window_secs,
            overlap,
            detector: DetectorConfig {
                subsample_step,
                implementation,
                normalize,
            },
        };
        Ok(Self {
            labeler: PosterioriLabeler::new(labeler_config),
            detector,
            batch_rows: Vec::new(),
            batch_labels: Vec::new(),
            num_seizures,
            num_quarantined,
            produced_labels,
            workspace: FeatureWorkspace::new(),
            delta: None,
        })
    }

    /// Per-seizure persistence: the pipeline twin of
    /// [`RealTimeDetector::save_delta`]. The first call returns
    /// [`DeltaSave::Full`] (write as the base snapshot, erase the journal
    /// region); afterwards each learned seizure costs one O(batch)
    /// [`DeltaSave::Append`], until the [`CompactionPolicy`] folds the
    /// journal into a fresh full base. Restore with
    /// [`SelfLearningPipeline::resume_with_journal`].
    pub fn save_delta(&mut self) -> DeltaSave {
        self.save_delta_with(CompactionPolicy::default())
    }

    /// [`SelfLearningPipeline::save_delta`] under an explicit compaction
    /// policy.
    pub fn save_delta_with(&mut self, policy: CompactionPolicy) -> DeltaSave {
        if let Some(save) = self.delta.as_mut().and_then(|d| d.save(policy)) {
            return save;
        }
        self.rebase_delta()
    }

    /// Writes a fresh full base snapshot and arms an empty journal over it.
    fn rebase_delta(&mut self) -> DeltaSave {
        let base = self.save();
        let writer = JournalWriter::new(&base, self.training_windows())
            .expect("save emits a valid envelope");
        self.delta = Some(DeltaState {
            writer,
            base_len: base.len(),
        });
        DeltaSave::Full(base)
    }

    /// Formats `flash` as a crash-proof A/B [`FlashStore`], commits the
    /// pipeline's current state as the first base and arms delta
    /// persistence — the first-boot counterpart of
    /// [`SelfLearningPipeline::resume_from_store`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Persist`] when the geometry does not fit the device or
    /// the snapshot does not fit a slot.
    pub fn init_store<F: Flash>(
        &mut self,
        flash: F,
        geometry: FlashGeometry,
    ) -> Result<FlashStore<F>, CoreError> {
        let DeltaSave::Full(base) = self.rebase_delta() else {
            unreachable!("rebase always yields a full snapshot");
        };
        Ok(FlashStore::format(flash, geometry, &base)?)
    }

    /// Persists the pipeline through a crash-proof [`FlashStore`], with the
    /// same Clean / Append / A-B-compact state machine as
    /// [`crate::realtime::RealTimeDetector::save_to_store`]; each learned
    /// seizure costs one O(batch) journal append until the store's
    /// capacity-derived policy folds the journal into the inactive slot.
    ///
    /// # Errors
    ///
    /// [`CoreError::Persist`] for store or Flash failures; after an error
    /// recover by remounting and resuming, as a device would post-crash.
    pub fn save_to_store<F: Flash>(
        &mut self,
        store: &mut FlashStore<F>,
    ) -> Result<StoreSave, CoreError> {
        match self.save_delta_with(store.compaction_policy()) {
            DeltaSave::Clean => Ok(StoreSave::Clean),
            DeltaSave::Full(base) => {
                store.commit_base(&base)?;
                Ok(StoreSave::Rebased)
            }
            DeltaSave::Append(entry) => {
                if entry.len() <= store.journal_remaining() {
                    store.append_journal(&entry)?;
                    Ok(StoreSave::Appended)
                } else {
                    let DeltaSave::Full(base) = self.rebase_delta() else {
                        unreachable!("rebase always yields a full snapshot");
                    };
                    store.commit_base(&base)?;
                    Ok(StoreSave::Rebased)
                }
            }
        }
    }

    /// Restores a pipeline from a mounted [`FlashStore`]: replays the
    /// journal prefix the store arbitrated onto the committed base
    /// (re-learning each journaled seizure) and arms delta persistence for
    /// the next [`SelfLearningPipeline::save_to_store`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Persist`] under the same conditions as
    /// [`SelfLearningPipeline::resume_with_journal`].
    pub fn resume_from_store<F: Flash>(
        store: &FlashStore<F>,
    ) -> Result<(Self, JournalReplayReport), CoreError> {
        let base = store.base()?;
        let journal_bytes = store.journal()?;
        Self::resume_with_journal(&base, &journal_bytes)
    }

    /// Restores a pipeline from a base snapshot plus its delta journal and
    /// arms delta persistence for the next
    /// [`SelfLearningPipeline::save_delta`]. Each journal entry re-applies
    /// its balanced batch through the incremental trainer **and** restores
    /// the produced label, the seizure counter and the quality gate's
    /// amplitude reference from its annotation, so the resumed pipeline is
    /// state-identical to the one that never powered down. (The quarantine
    /// counter is the one best-effort field: quarantined records train
    /// nothing and therefore journal nothing, so quarantines that happened
    /// after the base snapshot are not recounted on replay.) A torn final
    /// entry (power loss mid-append) is dropped; the
    /// report's `valid_len` says where to truncate the journal file before
    /// appending again.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Persist`] under the same conditions as
    /// [`RealTimeDetector::load_with_journal`], plus entries whose
    /// annotation is not a valid seizure label — never a panic, and a batch
    /// is never half-applied.
    pub fn resume_with_journal(
        base: &[u8],
        journal_bytes: &[u8],
    ) -> Result<(Self, JournalReplayReport), CoreError> {
        let mut pipeline = Self::resume(base)?;
        let fingerprint = journal::base_fingerprint(base)?;
        let scan = journal::scan_journal(journal_bytes)?;
        for (i, entry) in scan.entries.iter().enumerate() {
            let (label, gate_ref, gate_weight) = decode_annotation(&entry.annotation, i)?;
            pipeline
                .detector
                .apply_journal_entry(entry, fingerprint, i)?;
            // Each entry carries the gate reference as it stood after that
            // record was learned; restoring it per entry keeps the replayed
            // pipeline state-identical to the one that never powered down.
            pipeline
                .detector
                .restore_gate_reference(gate_ref, gate_weight);
            pipeline.num_seizures += 1;
            pipeline.produced_labels.push(label);
        }
        pipeline.delta = Some(DeltaState {
            writer: JournalWriter::resume(
                fingerprint,
                pipeline.training_windows(),
                scan.valid_len,
                scan.entries.len(),
            ),
            base_len: base.len(),
        });
        Ok((
            pipeline,
            JournalReplayReport {
                entries_applied: scan.entries.len(),
                valid_len: scan.valid_len,
                torn_bytes: scan.torn_bytes,
            },
        ))
    }

    /// Evaluates the current real-time detector on a held-out record, using the
    /// record's ground-truth annotation as the reference.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidState`] if the detector has not been trained
    /// yet and propagates evaluation failures otherwise.
    pub fn evaluate(&self, record: &EegRecord) -> Result<SelfLearningReport, CoreError> {
        let truth = SeizureLabel::new(record.annotation().onset(), record.annotation().offset())?;
        let cm = self.detector.evaluate(record.signal(), &truth)?;
        Ok(SelfLearningReport::from_confusion(&cm))
    }

    /// Evaluates the detector on several held-out records and returns the
    /// pooled confusion matrix as a report.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `records` is empty and the
    /// errors of [`SelfLearningPipeline::evaluate`] otherwise.
    pub fn evaluate_all(&self, records: &[EegRecord]) -> Result<SelfLearningReport, CoreError> {
        if records.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "records",
                reason: "evaluation requires at least one record".to_string(),
            });
        }
        let mut pooled = ConfusionMatrix::default();
        // One workspace serves the whole sweep: the feature buffer and the
        // per-worker scratches are grown once and reused per record.
        let mut workspace = FeatureWorkspace::new();
        for record in records {
            let truth =
                SeizureLabel::new(record.annotation().onset(), record.annotation().offset())?;
            let cm = self
                .detector
                .evaluate_with(record.signal(), &truth, &mut workspace)?;
            pooled.merge(&cm);
        }
        Ok(SelfLearningReport::from_confusion(&pooled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seizure_data::cohort::Cohort;
    use seizure_data::sampler::SampleConfig;
    use seizure_ml::forest::RandomForestConfig;
    use seizure_ml::persist::store::{FaultyFlash, MemFlash};

    fn fast_detector_config() -> RealTimeDetectorConfig {
        RealTimeDetectorConfig {
            forest: RandomForestConfig {
                n_trees: 8,
                max_depth: 6,
                ..RandomForestConfig::default()
            },
            ..RealTimeDetectorConfig::default()
        }
    }

    fn small_sample_config() -> SampleConfig {
        SampleConfig::new(150.0, 200.0, 64.0).unwrap()
    }

    #[test]
    fn pipeline_learns_from_missed_seizures_and_detects_new_ones() {
        let cohort = Cohort::chb_mit_like(21);
        let config = small_sample_config();
        let patient = 8; // clean patient 9
        let w = cohort.average_seizure_duration(patient).unwrap();
        let mut pipeline =
            SelfLearningPipeline::new(LabelerConfig::default(), fast_detector_config());
        assert_eq!(pipeline.num_seizures_collected(), 0);

        for seizure in 0..2 {
            let record = cohort.sample_record(patient, seizure, &config, 7).unwrap();
            let label = pipeline
                .observe_missed_seizure(&record, w, LabelSource::Algorithm)
                .unwrap()
                .expect("clean records must not be quarantined");
            assert!(label.duration_secs() > 0.0);
        }
        assert_eq!(pipeline.num_seizures_collected(), 2);
        assert_eq!(pipeline.produced_labels().len(), 2);
        assert!(pipeline.training_windows() > 0);
        assert!(pipeline.detector().is_trained());

        let held_out = cohort.sample_record(patient, 2, &config, 8).unwrap();
        let report = pipeline.evaluate(&held_out).unwrap();
        assert!(report.windows > 0);
        assert!(
            report.geometric_mean > 0.5,
            "gmean = {}",
            report.geometric_mean
        );
    }

    #[test]
    fn pipeline_accumulates_through_the_incremental_trainer() {
        let cohort = Cohort::chb_mit_like(25);
        let config = small_sample_config();
        let patient = 8;
        let w = cohort.average_seizure_duration(patient).unwrap();
        let mut pipeline =
            SelfLearningPipeline::new(LabelerConfig::default(), fast_detector_config());
        assert_eq!(pipeline.training_windows(), 0);

        let record = cohort.sample_record(patient, 0, &config, 11).unwrap();
        pipeline
            .observe_missed_seizure(&record, w, LabelSource::Algorithm)
            .unwrap();
        let after_first = pipeline.training_windows();
        assert!(after_first > 0);
        let trainer = pipeline.detector().incremental_trainer().unwrap();
        assert_eq!(trainer.num_samples(), after_first);

        let record = cohort.sample_record(patient, 1, &config, 12).unwrap();
        pipeline
            .observe_missed_seizure(&record, w, LabelSource::Algorithm)
            .unwrap();
        let trainer = pipeline.detector().incremental_trainer().unwrap();
        assert_eq!(trainer.num_samples(), pipeline.training_windows());
        assert!(pipeline.training_windows() > after_first);
        assert!(trainer.last_refit_count() <= trainer.num_trees());
    }

    /// Rebuild a record with its signal degraded by `scenario`, keeping the
    /// annotation — the shape the bench uses for its hostile sweeps.
    fn degraded_record(
        record: &seizure_data::sampler::EegRecord,
        scenario: seizure_data::synth::HostileScenario,
        seed: u64,
    ) -> seizure_data::sampler::EegRecord {
        let hostile =
            seizure_data::synth::degrade_signal(record.signal(), scenario, 1.0, seed).unwrap();
        seizure_data::sampler::EegRecord::new(
            hostile,
            *record.annotation(),
            record.patient_id(),
            record.seizure_index(),
        )
        .unwrap()
    }

    #[test]
    fn hostile_records_are_quarantined_before_the_labeler() {
        let cohort = Cohort::chb_mit_like(33);
        let config = small_sample_config();
        let patient = 8;
        let w = cohort.average_seizure_duration(patient).unwrap();
        let mut pipeline =
            SelfLearningPipeline::new(LabelerConfig::default(), fast_detector_config());
        let record = cohort.sample_record(patient, 0, &config, 71).unwrap();

        // A hum-swamped record must be turned away at the gate: no label is
        // produced, nothing reaches the trainer, and the detector's model is
        // untouched.
        let hostile = degraded_record(
            &record,
            seizure_data::synth::HostileScenario::MainsHum,
            0xBAD,
        );
        let outcome = pipeline
            .observe_missed_seizure(&hostile, w, LabelSource::Algorithm)
            .unwrap();
        assert!(outcome.is_none(), "hum-swamped record must be quarantined");
        assert_eq!(pipeline.num_quarantined(), 1);
        assert_eq!(pipeline.num_seizures_collected(), 0);
        assert_eq!(pipeline.training_windows(), 0);
        assert!(pipeline.produced_labels().is_empty());
        assert!(!pipeline.detector().is_trained());

        // The externally-labeled path quarantines on the same criterion.
        let truth = crate::label::SeizureLabel::new(
            record.annotation().onset(),
            record.annotation().offset(),
        )
        .unwrap();
        pipeline.add_training_record(&hostile, &truth).unwrap();
        assert_eq!(pipeline.num_quarantined(), 2);
        assert_eq!(pipeline.training_windows(), 0);

        // The same record without the damage trains normally afterwards.
        pipeline
            .observe_missed_seizure(&record, w, LabelSource::Algorithm)
            .unwrap()
            .expect("clean record must pass the gate");
        assert_eq!(pipeline.num_seizures_collected(), 1);
        assert!(pipeline.training_windows() > 0);
        assert!(pipeline.detector().is_trained());
    }

    #[test]
    fn quarantine_counter_round_trips_through_save_and_resume() {
        let cohort = Cohort::chb_mit_like(34);
        let config = small_sample_config();
        let patient = 8;
        let w = cohort.average_seizure_duration(patient).unwrap();
        let mut pipeline =
            SelfLearningPipeline::new(LabelerConfig::default(), fast_detector_config());

        let clean = cohort.sample_record(patient, 0, &config, 81).unwrap();
        pipeline
            .observe_missed_seizure(&clean, w, LabelSource::Algorithm)
            .unwrap()
            .expect("clean record must pass the gate");
        let hostile = degraded_record(
            &cohort.sample_record(patient, 1, &config, 82).unwrap(),
            seizure_data::synth::HostileScenario::Saturation,
            0xBAD2,
        );
        assert!(pipeline
            .observe_missed_seizure(&hostile, w, LabelSource::Algorithm)
            .unwrap()
            .is_none());
        assert_eq!(pipeline.num_quarantined(), 1);

        let resumed = SelfLearningPipeline::resume(&pipeline.save()).unwrap();
        assert_eq!(resumed.num_quarantined(), 1);
        assert_eq!(resumed.num_seizures_collected(), 1);
        assert_eq!(resumed.save(), pipeline.save());
    }

    #[test]
    fn expert_labels_can_be_used_as_a_baseline() {
        let cohort = Cohort::chb_mit_like(22);
        let config = small_sample_config();
        let patient = 4;
        let w = cohort.average_seizure_duration(patient).unwrap();
        let mut pipeline =
            SelfLearningPipeline::new(LabelerConfig::default(), fast_detector_config());
        let record = cohort.sample_record(patient, 0, &config, 1).unwrap();
        let label = pipeline
            .observe_missed_seizure(&record, w, LabelSource::Expert)
            .unwrap()
            .expect("clean records must not be quarantined");
        // Expert labels coincide exactly with the ground-truth annotation.
        assert_eq!(label.onset_secs(), record.annotation().onset());
        assert_eq!(label.offset_secs(), record.annotation().offset());
    }

    #[test]
    fn non_seizure_labels_are_not_counted_as_collected_seizures() {
        // Regression: `add_training_record` used to be all-or-nothing around
        // the seizure counter; an externally produced label that marks no
        // window of the record must neither train nor count.
        let cohort = Cohort::chb_mit_like(26);
        let config = small_sample_config();
        let patient = 8;
        let mut pipeline =
            SelfLearningPipeline::new(LabelerConfig::default(), fast_detector_config());
        let record = cohort.sample_record(patient, 0, &config, 5).unwrap();

        // A label entirely past the end of the record yields no seizure
        // window under the half-overlap rule.
        let beyond = record.signal().duration_secs() + 100.0;
        let label = crate::label::SeizureLabel::new(beyond, beyond + 30.0).unwrap();
        pipeline.add_training_record(&record, &label).unwrap();
        assert_eq!(pipeline.num_seizures_collected(), 0);
        assert_eq!(pipeline.training_windows(), 0);
        assert!(pipeline.produced_labels().is_empty());
        assert!(!pipeline.detector().is_trained());

        // A genuine seizure label afterwards trains and counts exactly once.
        let truth = crate::label::SeizureLabel::new(
            record.annotation().onset(),
            record.annotation().offset(),
        )
        .unwrap();
        pipeline.add_training_record(&record, &truth).unwrap();
        assert_eq!(pipeline.num_seizures_collected(), 1);
        assert!(pipeline.training_windows() > 0);
    }

    #[test]
    fn staged_batches_spread_classes_when_positives_dominate() {
        // A label covering most of the record yields far more seizure than
        // seizure-free windows; the staging buffer must still spread the
        // negatives through the positives so no ownership block of the
        // incremental pool is filled by one class.
        let cohort = Cohort::chb_mit_like(28);
        let config = small_sample_config();
        let mut pipeline =
            SelfLearningPipeline::new(LabelerConfig::default(), fast_detector_config());
        let record = cohort.sample_record(8, 0, &config, 6).unwrap();
        let label =
            crate::label::SeizureLabel::new(1.0, record.signal().duration_secs() * 0.8).unwrap();
        pipeline.add_training_record(&record, &label).unwrap();

        let staged = &pipeline.batch_labels;
        let pos = staged.iter().filter(|&&l| l).count();
        let neg = staged.len() - pos;
        assert!(pos > neg, "the label should dominate: {pos} vs {neg}");
        let mut max_run = 0;
        let mut run = 0;
        let mut prev = None;
        for &l in staged {
            run = if prev == Some(l) { run + 1 } else { 1 };
            prev = Some(l);
            max_run = max_run.max(run);
        }
        assert!(
            max_run <= pos.div_ceil(neg) + 1,
            "max single-class run {max_run} exceeds the class ratio bound"
        );
    }

    #[test]
    fn resumed_pipeline_reproduces_detections_and_keeps_learning() {
        let cohort = Cohort::chb_mit_like(27);
        let config = small_sample_config();
        let patient = 8;
        let w = cohort.average_seizure_duration(patient).unwrap();
        let mut pipeline =
            SelfLearningPipeline::new(LabelerConfig::default(), fast_detector_config());
        let record = cohort.sample_record(patient, 0, &config, 21).unwrap();
        pipeline
            .observe_missed_seizure(&record, w, LabelSource::Algorithm)
            .unwrap();

        // Save, cross the "process boundary", resume.
        let snapshot = pipeline.save();
        let mut resumed = SelfLearningPipeline::resume(&snapshot).unwrap();
        assert_eq!(resumed.num_seizures_collected(), 1);
        assert_eq!(resumed.produced_labels(), pipeline.produced_labels());
        assert_eq!(resumed.training_windows(), pipeline.training_windows());

        // Same detections on a held-out record...
        let held_out = cohort.sample_record(patient, 2, &config, 22).unwrap();
        assert_eq!(
            resumed.detector().detect(held_out.signal()).unwrap(),
            pipeline.detector().detect(held_out.signal()).unwrap()
        );

        // ...and the next missed seizure retrains node-identically to the
        // pipeline that never shut down.
        let second = cohort.sample_record(patient, 1, &config, 23).unwrap();
        pipeline
            .observe_missed_seizure(&second, w, LabelSource::Algorithm)
            .unwrap();
        resumed
            .observe_missed_seizure(&second, w, LabelSource::Algorithm)
            .unwrap();
        assert_eq!(
            resumed.detector().flat_forest(),
            pipeline.detector().flat_forest()
        );
        assert_eq!(resumed.num_seizures_collected(), 2);
    }

    #[test]
    fn pipeline_delta_saves_resume_with_labels_and_counters() {
        let cohort = Cohort::chb_mit_like(29);
        let config = small_sample_config();
        let patient = 8;
        let w = cohort.average_seizure_duration(patient).unwrap();
        let mut pipeline =
            SelfLearningPipeline::new(LabelerConfig::default(), fast_detector_config());

        // Seizure 1, then the first delta save: a full base.
        let record = cohort.sample_record(patient, 0, &config, 31).unwrap();
        pipeline
            .observe_missed_seizure(&record, w, LabelSource::Algorithm)
            .unwrap();
        let base = match pipeline.save_delta() {
            DeltaSave::Full(bytes) => bytes,
            other => panic!("first delta save must be full, got {other:?}"),
        };
        assert_eq!(pipeline.save_delta(), DeltaSave::Clean);

        // Seizure 2: an O(batch) append. With only one seizure in the base,
        // the batch is a large fraction of the pool and the default policy
        // would legitimately compact — a lenient one pins the append
        // outcome this early-life test is about.
        let lenient = CompactionPolicy {
            max_journal_fraction: 100.0,
            ..CompactionPolicy::default()
        };
        let second = cohort.sample_record(patient, 1, &config, 32).unwrap();
        pipeline
            .observe_missed_seizure(&second, w, LabelSource::Algorithm)
            .unwrap();
        let journal = match pipeline.save_delta_with(lenient) {
            DeltaSave::Append(bytes) => bytes,
            other => panic!("steady-state delta save must append, got {other:?}"),
        };
        assert!(
            journal.len() < base.len(),
            "append of {} bytes vs base of {}",
            journal.len(),
            base.len()
        );

        // Resume: detections, counter and label history all come back.
        let (mut resumed, report) =
            SelfLearningPipeline::resume_with_journal(&base, &journal).unwrap();
        assert_eq!(report.entries_applied, 1);
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(resumed.num_seizures_collected(), 2);
        assert_eq!(resumed.produced_labels(), pipeline.produced_labels());
        assert_eq!(resumed.training_windows(), pipeline.training_windows());
        assert_eq!(
            resumed.detector().flat_forest(),
            pipeline.detector().flat_forest()
        );
        let held_out = cohort.sample_record(patient, 2, &config, 33).unwrap();
        assert_eq!(
            resumed.detector().detect(held_out.signal()).unwrap(),
            pipeline.detector().detect(held_out.signal()).unwrap()
        );

        // The resumed pipeline keeps journaling: learn from the held-out
        // seizure on both sides and compare the next appended entry.
        pipeline
            .observe_missed_seizure(&held_out, w, LabelSource::Algorithm)
            .unwrap();
        resumed
            .observe_missed_seizure(&held_out, w, LabelSource::Algorithm)
            .unwrap();
        let a = pipeline.save_delta_with(lenient);
        let b = resumed.save_delta_with(lenient);
        assert!(matches!(a, DeltaSave::Append(_)));
        assert_eq!(a, b, "resumed journal must continue the same sequence");
    }

    #[test]
    fn pipeline_torn_journal_drops_the_lost_seizure_only() {
        let cohort = Cohort::chb_mit_like(30);
        let config = small_sample_config();
        let patient = 8;
        let w = cohort.average_seizure_duration(patient).unwrap();
        let mut pipeline =
            SelfLearningPipeline::new(LabelerConfig::default(), fast_detector_config());
        let record = cohort.sample_record(patient, 0, &config, 41).unwrap();
        pipeline
            .observe_missed_seizure(&record, w, LabelSource::Algorithm)
            .unwrap();
        let base = match pipeline.save_delta() {
            DeltaSave::Full(bytes) => bytes,
            other => panic!("{other:?}"),
        };
        let second = cohort.sample_record(patient, 1, &config, 42).unwrap();
        pipeline
            .observe_missed_seizure(&second, w, LabelSource::Algorithm)
            .unwrap();
        let lenient = CompactionPolicy {
            max_journal_fraction: 100.0,
            ..CompactionPolicy::default()
        };
        let journal = match pipeline.save_delta_with(lenient) {
            DeltaSave::Append(bytes) => bytes,
            other => panic!("{other:?}"),
        };

        // Crash mid-append: the resumed pipeline holds exactly one seizure
        // and reports where the journal file must be truncated.
        let torn = &journal[..journal.len() - 7];
        let (resumed, report) = SelfLearningPipeline::resume_with_journal(&base, torn).unwrap();
        assert_eq!(report.entries_applied, 0);
        assert_eq!(report.valid_len, 0);
        assert_eq!(report.torn_bytes, torn.len());
        assert_eq!(resumed.num_seizures_collected(), 1);
        assert_eq!(resumed.produced_labels().len(), 1);

        // A corrupt annotation is a typed error, not a panic: flip a byte
        // inside the entry and re-sign nothing — the checksum catches it.
        let mut flipped = journal.clone();
        flipped[journal.len() / 2] ^= 0x01;
        assert!(matches!(
            SelfLearningPipeline::resume_with_journal(&base, &flipped),
            Err(CoreError::Persist(_))
        ));
    }

    /// The zero-copy pipeline snapshot (detector nested in place) must stay
    /// byte-identical to the copying path the format was defined with.
    #[test]
    fn zero_copy_pipeline_snapshot_is_byte_identical_to_the_copying_codec() {
        let cohort = Cohort::chb_mit_like(31);
        let config = small_sample_config();
        let patient = 8;
        let w = cohort.average_seizure_duration(patient).unwrap();
        let mut pipeline =
            SelfLearningPipeline::new(LabelerConfig::default(), fast_detector_config());
        let record = cohort.sample_record(patient, 0, &config, 51).unwrap();
        pipeline
            .observe_missed_seizure(&record, w, LabelSource::Algorithm)
            .unwrap();

        let labeler = pipeline.labeler.config();
        let mut reference = SnapshotWriter::new();
        reference.f64(labeler.window_secs);
        reference.f64(labeler.overlap);
        reference.usize(labeler.detector.subsample_step);
        reference.u8(match labeler.detector.implementation {
            Implementation::Reference => 0,
            Implementation::Optimized => 1,
        });
        reference.bool(labeler.detector.normalize);
        reference.nested(&pipeline.detector.save_state());
        reference.usize(pipeline.num_seizures);
        reference.usize(pipeline.num_quarantined);
        reference.usize(pipeline.produced_labels.len());
        for label in &pipeline.produced_labels {
            reference.f64(label.onset_secs());
            reference.f64(label.offset_secs());
        }
        assert_eq!(
            pipeline.save(),
            reference.finish(SnapshotKind::SelfLearningPipeline)
        );
    }

    #[test]
    fn corrupt_pipeline_snapshots_are_rejected() {
        let pipeline = SelfLearningPipeline::new(LabelerConfig::default(), fast_detector_config());
        let mut bytes = pipeline.save();
        assert!(SelfLearningPipeline::resume(&bytes[..10]).is_err());
        bytes[24] ^= 0x10;
        assert!(matches!(
            SelfLearningPipeline::resume(&bytes),
            Err(CoreError::Persist(_))
        ));
        // An untrained pipeline round-trips too (empty-pool snapshot).
        let restored = SelfLearningPipeline::resume(&pipeline.save()).unwrap();
        assert_eq!(restored.num_seizures_collected(), 0);
        assert!(!restored.detector().is_trained());
    }

    #[test]
    fn evaluation_before_training_fails() {
        let cohort = Cohort::chb_mit_like(23);
        let config = small_sample_config();
        let record = cohort.sample_record(0, 0, &config, 1).unwrap();
        let pipeline = SelfLearningPipeline::new(LabelerConfig::default(), fast_detector_config());
        assert!(pipeline.evaluate(&record).is_err());
        assert!(pipeline.evaluate_all(&[record]).is_err());
    }

    #[test]
    fn evaluate_all_rejects_empty_input_and_pools_otherwise() {
        let cohort = Cohort::chb_mit_like(24);
        let config = small_sample_config();
        let patient = 8;
        let w = cohort.average_seizure_duration(patient).unwrap();
        let mut pipeline =
            SelfLearningPipeline::new(LabelerConfig::default(), fast_detector_config());
        let record = cohort.sample_record(patient, 0, &config, 2).unwrap();
        pipeline
            .observe_missed_seizure(&record, w, LabelSource::Algorithm)
            .unwrap();
        assert!(pipeline.evaluate_all(&[]).is_err());

        let held_out: Vec<_> = (1..3)
            .map(|s| cohort.sample_record(patient, s, &config, 3).unwrap())
            .collect();
        let report = pipeline.evaluate_all(&held_out).unwrap();
        assert!(report.windows > 0);
        assert!((0.0..=1.0).contains(&report.geometric_mean));
    }

    #[test]
    fn pipeline_store_round_trip_is_node_identical() {
        let cohort = Cohort::chb_mit_like(29);
        let config = small_sample_config();
        let patient = 8;
        let w = cohort.average_seizure_duration(patient).unwrap();
        let mut pipeline =
            SelfLearningPipeline::new(LabelerConfig::default(), fast_detector_config());
        let record = cohort.sample_record(patient, 0, &config, 51).unwrap();
        pipeline
            .observe_missed_seizure(&record, w, LabelSource::Algorithm)
            .unwrap();

        // Format: seizure 1 becomes the slot-A base; nothing pending after.
        let base_len = pipeline.save().len();
        let geometry = FlashGeometry::for_base(base_len * 6, base_len * 4);
        let mut store = pipeline
            .init_store(MemFlash::new(geometry.total_bytes()), geometry)
            .unwrap();
        assert_eq!(
            pipeline.save_to_store(&mut store).unwrap(),
            StoreSave::Clean
        );

        // Seizure 2 is one O(batch) journal append.
        let second = cohort.sample_record(patient, 1, &config, 52).unwrap();
        pipeline
            .observe_missed_seizure(&second, w, LabelSource::Algorithm)
            .unwrap();
        assert_eq!(
            pipeline.save_to_store(&mut store).unwrap(),
            StoreSave::Appended
        );

        // Power cycle: labels, counters and the forest all come back.
        let (store, report) = FlashStore::mount(store.into_flash(), geometry).unwrap();
        assert_eq!(report.journal_entries, 1);
        let (resumed, replay) = SelfLearningPipeline::resume_from_store(&store).unwrap();
        assert_eq!(replay.entries_applied, 1);
        assert_eq!(resumed.num_seizures_collected(), 2);
        assert_eq!(resumed.produced_labels(), pipeline.produced_labels());
        assert_eq!(
            resumed.detector().flat_forest(),
            pipeline.detector().flat_forest()
        );
        let held_out = cohort.sample_record(patient, 2, &config, 53).unwrap();
        assert_eq!(
            resumed.detector().detect(held_out.signal()).unwrap(),
            pipeline.detector().detect(held_out.signal()).unwrap()
        );
        assert_eq!(resumed.save(), pipeline.save());
    }

    #[test]
    fn pipeline_store_survives_crashes_mid_append_and_mid_commit() {
        let cohort = Cohort::chb_mit_like(31);
        let config = small_sample_config();
        let patient = 8;
        let w = cohort.average_seizure_duration(patient).unwrap();
        let mut pipeline =
            SelfLearningPipeline::new(LabelerConfig::default(), fast_detector_config());
        let first = cohort.sample_record(patient, 0, &config, 60).unwrap();
        pipeline
            .observe_missed_seizure(&first, w, LabelSource::Algorithm)
            .unwrap();
        let records: Vec<_> = (1..3)
            .map(|s| {
                cohort
                    .sample_record(patient, s, &config, 60 + s as u64)
                    .unwrap()
            })
            .collect();

        // Probe one appended entry on a throwaway clone to size a journal
        // region that takes the first entry and compacts on the second.
        let lenient = CompactionPolicy {
            max_journal_fraction: 100.0,
            ..CompactionPolicy::default()
        };
        let mut probe = pipeline.clone();
        probe.save_delta();
        probe
            .observe_missed_seizure(&records[0], w, LabelSource::Algorithm)
            .unwrap();
        let entry_len = match probe.save_delta_with(lenient) {
            DeltaSave::Append(bytes) => bytes.len(),
            other => panic!("probe must append, got {other:?}"),
        };

        let base_len = pipeline.save().len();
        let geometry = FlashGeometry::for_base(base_len * 6, entry_len * 2);
        let mut store = pipeline
            .init_store(FaultyFlash::new(geometry.total_bytes()), geometry)
            .unwrap();
        let armed = pipeline.clone();
        let image = store.flash().image().to_vec();
        let format_bytes = store.flash().bytes_written();

        // Fault-free reference pass: one append, then one A/B compaction.
        let mut states = vec![pipeline.save()];
        let mut op_end = Vec::new();
        let mut outcomes = Vec::new();
        for record in &records {
            pipeline
                .observe_missed_seizure(record, w, LabelSource::Algorithm)
                .unwrap();
            outcomes.push(pipeline.save_to_store(&mut store).unwrap());
            states.push(pipeline.save());
            op_end.push(store.flash().bytes_written() - format_bytes);
        }
        assert_eq!(
            outcomes,
            [StoreSave::Appended, StoreSave::Rebased],
            "the cuts must target one append and one compaction"
        );

        // Cut each operation at 1/4, 1/2 and 3/4 of its write stream.
        let mut cuts = Vec::new();
        let mut start = 0;
        for &end in &op_end {
            for quarter in 1..4 {
                cuts.push(start + (end - start) * quarter / 4);
            }
            start = end;
        }
        for cut in cuts {
            let flash = FaultyFlash::from_image(image.clone()).power_loss_after(cut);
            let mut live = armed.clone();
            let mut store = FlashStore::mount(flash, geometry).map(|(s, _)| s).unwrap();
            let mut died_at = None;
            for (i, record) in records.iter().enumerate() {
                live.observe_missed_seizure(record, w, LabelSource::Algorithm)
                    .unwrap();
                if live.save_to_store(&mut store).is_err() {
                    died_at = Some(i);
                    break;
                }
            }
            let i = died_at.unwrap_or_else(|| panic!("cut {cut} must kill a save"));
            let (store, _) = FlashStore::mount(store.into_flash().reboot(), geometry)
                .unwrap_or_else(|e| panic!("cut {cut}: store lost: {e}"));
            let (resumed, _) = SelfLearningPipeline::resume_from_store(&store)
                .unwrap_or_else(|e| panic!("cut {cut}: resume failed: {e}"));
            let observed = resumed.save();
            assert!(
                observed == states[i] || observed == states[i + 1],
                "cut {cut}: crash during save {i} recovered neither the pre-save nor \
                 the committed state"
            );
        }
    }
}
