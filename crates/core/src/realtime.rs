//! Supervised real-time seizure detector.
//!
//! The paper's real-time stage is the random-forest detector of Sopic et al.
//! (e-Glass): a rich feature vector is extracted from each 4-second window of
//! the two-channel EEG and classified as seizure / non-seizure. In the
//! self-learning methodology this detector is trained with the labels produced
//! by the a-posteriori algorithm instead of expert annotations.

use crate::error::CoreError;
use crate::label::{window_labels, SeizureLabel};
use crate::workspace::FeatureWorkspace;
use seizure_data::signal::EegSignal;
use seizure_features::extractor::{FeatureExtractor, RichFeatureSet, SlidingWindowConfig};
use seizure_features::matrix::FeatureMatrix;
use seizure_features::quality::{
    self, QualityExtractor, QualityScratch, IDX_DISAGREEMENT, IDX_DRIFT_RATIO, IDX_FLAT_RUN_FRAC,
    IDX_HUM_RATIO, IDX_LOG_STD, IDX_MAX_JUMP_SIGMA, IDX_RAILED_FRAC, NUM_QUALITY_FEATURES,
};
use seizure_features::streaming::StreamingRichExtractor;
use seizure_ml::dataset::Dataset;
use seizure_ml::flat::FlatForest;
use seizure_ml::forest::RandomForestConfig;
use seizure_ml::incremental::{IncrementalTrainer, IncrementalTrainerConfig};
use seizure_ml::metrics::ConfusionMatrix;
use seizure_ml::persist::journal::{
    self, CompactionPolicy, DeltaSave, DeltaState, JournalEntry, JournalReplayReport, JournalWriter,
};
use seizure_ml::persist::store::{Flash, FlashGeometry, FlashStore, StoreSave};
use seizure_ml::persist::{self, PersistError, SnapshotKind, SnapshotReader, SnapshotWriter};
use seizure_ml::training::{train_forest, TrainingSet};

/// Snapshot marker: the detector has never been trained.
const MODEL_UNTRAINED: u8 = 0;
/// Snapshot marker: batch-trained model (standardization statistics stored).
const MODEL_BATCH: u8 = 1;
/// Snapshot marker: incrementally trained model (raw features, trainer
/// stored, forest re-stitched on load).
const MODEL_INCREMENTAL: u8 = 2;

/// Configuration of the real-time detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealTimeDetectorConfig {
    /// Analysis window length in seconds (paper: 4 s).
    pub window_secs: f64,
    /// Window overlap in `[0, 1)` (paper: 0.75).
    pub overlap: f64,
    /// Random-forest hyper-parameters.
    pub forest: RandomForestConfig,
    /// Seed controlling the forest's bootstrap sampling.
    pub seed: u64,
    /// Ownership-block size of the incremental retraining engine (see
    /// [`IncrementalTrainerConfig::block_size`]).
    pub incremental_block_size: usize,
    /// Runs the signal-quality gate ahead of the forest: per-window
    /// [`QualityVerdict`]s with hysteresis, alarm suppression on `Reject`
    /// windows and (once calibrated) slow gain correction. Disable to get
    /// the raw fail-open detector the robustness bench uses as its
    /// before-gating baseline.
    pub quality_gate: bool,
}

impl Default for RealTimeDetectorConfig {
    fn default() -> Self {
        Self {
            window_secs: 4.0,
            overlap: 0.75,
            forest: RandomForestConfig {
                n_trees: 30,
                max_depth: 8,
                ..RandomForestConfig::default()
            },
            seed: 0,
            incremental_block_size: IncrementalTrainerConfig::default().block_size,
            quality_gate: true,
        }
    }
}

/// Per-window verdict of the signal-quality gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QualityVerdict {
    /// The window looks like physiological EEG; classify normally.
    Clean,
    /// Mildly degraded: classified, but flagged (and held in `Reject` by the
    /// hysteresis if the previous window was rejected).
    Suspect,
    /// Artifact-dominated: the forest's alarm is suppressed and the window
    /// is barred from the self-learning pool.
    Reject,
}

/// Reject / hold / release thresholds of the quality gate's Schmitt
/// trigger, per indicator. One set of constants (not per-detector state)
/// so the persisted gate stays a fixed-size block.
mod gate_thresholds {
    /// Railed-sample fraction (clean windows sit at ~2/n ≈ 0.008).
    pub const RAILED: (f64, f64) = (0.05, 0.02);
    /// Longest flat-run fraction (dropouts hold one value for the window).
    pub const FLAT: (f64, f64) = (0.25, 0.10);
    /// Aliased mains-hum tone ratio.
    pub const HUM: (f64, f64) = (0.22, 0.10);
    /// Sub-1 Hz + DC share of window energy (baseline wander). Measured on
    /// the synthetic cohort at 64 Hz: clean windows top out at ~0.89 while
    /// wander pushes the median past 0.98, so the trigger sits between.
    pub const DRIFT: (f64, f64) = (0.93, 0.87);
    /// Largest sample step in robust sigmas (electrode pops). Clean windows
    /// (seizures included) stay under ~20; pops land at 40–80.
    pub const JUMP: (f64, f64) = (25.0, 12.0);
    /// Cross-channel log-amplitude disagreement.
    pub const DISAGREE: (f64, f64) = (2.6, 1.9);
}

/// Log-gain deviation (vs the calibrated reference) below which the slow
/// gain correction stays exactly unity, so clean records run bit-identical
/// to an ungated detector.
const AGC_DEADBAND: f64 = 0.45;
/// Clamp of the per-sample gain correction factor.
const AGC_MAX_CORRECTION: f64 = 4.0;
/// Minimum number of non-rejected windows before a gain fit is attempted.
const AGC_MIN_WINDOWS: usize = 8;

/// Calibrated state of the signal-quality gate: the per-channel reference
/// log-amplitude the slow gain correction pulls hostile records back
/// towards. Verdict thresholds are compile-time constants; only this
/// reference is learned (from `Clean` non-seizure windows of training
/// records) and persisted.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QualityGate {
    ref_log_std: [f64; 2],
    ref_weight: f64,
}

impl QualityGate {
    /// `true` once at least one clean window has calibrated the reference.
    pub fn is_calibrated(&self) -> bool {
        self.ref_weight > 0.0
    }

    /// The calibrated per-channel reference log standard deviation
    /// (F7T3, F8T4); meaningless until [`QualityGate::is_calibrated`].
    pub fn reference_log_std(&self) -> [f64; 2] {
        self.ref_log_std
    }

    /// Number of clean windows folded into the reference so far.
    pub fn calibration_weight(&self) -> f64 {
        self.ref_weight
    }

    /// Folds one clean non-seizure window's per-channel log-std into the
    /// running reference mean.
    fn calibrate(&mut self, log_std_a: f64, log_std_b: f64) {
        let w = self.ref_weight;
        self.ref_log_std[0] = (self.ref_log_std[0] * w + log_std_a) / (w + 1.0);
        self.ref_log_std[1] = (self.ref_log_std[1] * w + log_std_b) / (w + 1.0);
        self.ref_weight = w + 1.0;
    }

    /// Severity of one quality row against the constant thresholds:
    /// 2 = beyond a reject threshold, 1 = beyond a hold/suspect threshold,
    /// 0 = clean. Per-channel indicators trip on their worst channel.
    fn raw_level(row: &[f64]) -> u8 {
        let per_channel = [
            (IDX_RAILED_FRAC, gate_thresholds::RAILED),
            (IDX_FLAT_RUN_FRAC, gate_thresholds::FLAT),
            (IDX_HUM_RATIO, gate_thresholds::HUM),
            (IDX_DRIFT_RATIO, gate_thresholds::DRIFT),
            (IDX_MAX_JUMP_SIGMA, gate_thresholds::JUMP),
        ];
        let mut level = 0u8;
        for (idx, (reject, suspect)) in per_channel {
            for channel in 0..2 {
                let v = row[quality::channel_column(channel, idx)];
                if v >= reject {
                    return 2;
                }
                if v >= suspect {
                    level = 1;
                }
            }
        }
        let disagree = row[IDX_DISAGREEMENT];
        if disagree >= gate_thresholds::DISAGREE.0 {
            return 2;
        }
        if disagree >= gate_thresholds::DISAGREE.1 {
            level = 1;
        }
        level
    }

    /// Turns the per-window quality rows into verdicts with hysteresis
    /// (Schmitt trigger over the window sequence):
    ///
    /// * beyond a reject threshold → `Reject`;
    /// * beyond a suspect threshold → `Suspect`, or `Reject` if the
    ///   previous window was rejected (the gate holds until the signal is
    ///   fully clean);
    /// * clean → `Clean`, or `Suspect` for one cool-down window right
    ///   after a rejection.
    pub fn verdicts_into(quality: &FeatureMatrix, out: &mut Vec<QualityVerdict>) {
        out.clear();
        out.reserve(quality.num_windows());
        let mut prev = QualityVerdict::Clean;
        for row in quality.rows() {
            let verdict = Self::next_verdict(Self::raw_level(row), prev);
            out.push(verdict);
            prev = verdict;
        }
    }

    /// One step of the gate's Schmitt trigger: the verdict of a window with
    /// severity `level` (see [`QualityGate::raw_level`]) given the previous
    /// window's verdict — shared by the record-level `verdicts_into` sweep
    /// and the sample-at-a-time [`StreamingDetector`].
    fn next_verdict(level: u8, prev: QualityVerdict) -> QualityVerdict {
        match (level, prev) {
            (2, _) => QualityVerdict::Reject,
            (1, QualityVerdict::Reject) => QualityVerdict::Reject,
            (1, _) => QualityVerdict::Suspect,
            (_, QualityVerdict::Reject) => QualityVerdict::Suspect,
            _ => QualityVerdict::Clean,
        }
    }
}

/// The random-forest real-time seizure detector.
///
/// # Example
///
/// ```no_run
/// use seizure_core::realtime::{RealTimeDetector, RealTimeDetectorConfig};
/// use seizure_core::SeizureLabel;
/// use seizure_data::cohort::Cohort;
/// use seizure_data::sampler::SampleConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cohort = Cohort::chb_mit_like(1);
/// let config = SampleConfig::fast_test()?;
/// let record = cohort.sample_record(0, 0, &config, 0)?;
///
/// let mut detector = RealTimeDetector::new(RealTimeDetectorConfig::default());
/// let expert_label = SeizureLabel::new(
///     record.annotation().onset(),
///     record.annotation().offset(),
/// )?;
/// let training = detector.build_training_windows(record.signal(), &expert_label)?;
/// detector.train(&training)?;
/// let alarms = detector.detect(record.signal())?;
/// assert_eq!(alarms.len(), training.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RealTimeDetector {
    config: RealTimeDetectorConfig,
    /// The fitted forest compiled into flat struct-of-arrays storage; the
    /// boxed ensemble is dropped after compilation so only one copy of the
    /// model stays resident.
    flat: Option<FlatForest>,
    feature_means: Vec<f64>,
    feature_stds: Vec<f64>,
    /// The growable retraining engine behind
    /// [`RealTimeDetector::retrain_incremental`]; `None` until the first
    /// incremental retrain.
    incremental: Option<IncrementalTrainer>,
    /// Delta-journal state armed by [`RealTimeDetector::save_delta`] /
    /// [`RealTimeDetector::load_with_journal`]; `None` while the detector
    /// persists through full snapshots only.
    delta: Option<DeltaState>,
    /// Calibrated signal-quality gate state (always present; only consulted
    /// when [`RealTimeDetectorConfig::quality_gate`] is on).
    gate: QualityGate,
}

impl RealTimeDetector {
    /// Creates an untrained detector.
    pub fn new(config: RealTimeDetectorConfig) -> Self {
        Self {
            config,
            flat: None,
            feature_means: Vec::new(),
            feature_stds: Vec::new(),
            incremental: None,
            delta: None,
            gate: QualityGate::default(),
        }
    }

    /// The signal-quality gate's calibrated state.
    pub fn quality_gate(&self) -> &QualityGate {
        &self.gate
    }

    /// Overwrites the gate's calibrated amplitude reference — used by the
    /// pipeline's journal replay, where each entry carries the reference as
    /// it stood after that record was learned.
    pub(crate) fn restore_gate_reference(&mut self, ref_log_std: [f64; 2], ref_weight: f64) {
        self.gate = QualityGate {
            ref_log_std,
            ref_weight,
        };
    }

    /// The detector's configuration.
    pub fn config(&self) -> &RealTimeDetectorConfig {
        &self.config
    }

    /// Returns `true` once [`RealTimeDetector::train`] has succeeded.
    pub fn is_trained(&self) -> bool {
        self.flat.is_some()
    }

    fn window_config(&self, fs: f64) -> Result<SlidingWindowConfig, CoreError> {
        Ok(SlidingWindowConfig::new(
            fs,
            self.config.window_secs,
            self.config.overlap,
        )?)
    }

    /// Extracts the rich (54-feature) matrix of a signal through the batch
    /// engine: parallel over windows, one flat row-major buffer, per-thread
    /// scratch workspaces.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures.
    pub fn extract_feature_matrix(&self, signal: &EegSignal) -> Result<FeatureMatrix, CoreError> {
        let mut ws = FeatureWorkspace::new();
        self.extract_feature_matrix_with(signal, &mut ws)?;
        Ok(ws.matrix)
    }

    /// Multi-record twin of [`RealTimeDetector::extract_feature_matrix`]:
    /// refills the workspace's matrix in place and reuses its pooled
    /// FFT/wavelet scratches, so consecutive records extract without
    /// reallocating.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures.
    pub fn extract_feature_matrix_with(
        &self,
        signal: &EegSignal,
        workspace: &mut FeatureWorkspace,
    ) -> Result<(), CoreError> {
        let fs = signal.sampling_frequency();
        let window = self.window_config(fs)?;
        let extractor = RichFeatureSet::new(fs)?;
        extractor.extract_batch_into(
            signal.f7t3(),
            signal.f8t4(),
            &window,
            &workspace.pool,
            &mut workspace.matrix,
        )?;
        Ok(())
    }

    /// Extracts the rich (54-feature) matrix of a signal as plain rows
    /// (allocating; kept for the training path, which needs row vectors).
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures.
    pub fn extract_features(&self, signal: &EegSignal) -> Result<Vec<Vec<f64>>, CoreError> {
        Ok(self.extract_feature_matrix(signal)?.to_rows())
    }

    /// Builds a per-window labeled dataset from a signal and a seizure label
    /// (which may come from the a-posteriori algorithm or from an expert).
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures.
    pub fn build_training_windows(
        &self,
        signal: &EegSignal,
        label: &SeizureLabel,
    ) -> Result<Dataset, CoreError> {
        let fs = signal.sampling_frequency();
        let window = self.window_config(fs)?;
        let rows = self.extract_features(signal)?;
        let labels = window_labels(
            label,
            rows.len(),
            window.window_seconds(),
            window.step_seconds(),
        )?;
        Ok(Dataset::new(rows, labels)?)
    }

    /// Flat-path twin of [`RealTimeDetector::build_training_windows`]:
    /// extracts the record's features into the workspace matrix (reusing its
    /// buffers) and returns the per-window labels, leaving the rows in
    /// `workspace.matrix()` — no `Vec<Vec<f64>>` round-trip.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures.
    pub fn build_training_windows_with(
        &self,
        signal: &EegSignal,
        label: &SeizureLabel,
        workspace: &mut FeatureWorkspace,
    ) -> Result<Vec<bool>, CoreError> {
        let fs = signal.sampling_frequency();
        let window = self.window_config(fs)?;
        self.extract_feature_matrix_with(signal, workspace)?;
        window_labels(
            label,
            workspace.matrix.num_windows(),
            window.window_seconds(),
            window.step_seconds(),
        )
    }

    /// Builds a balanced training dataset: all seizure windows of `dataset`
    /// plus an equal number of evenly spaced non-seizure windows (the paper
    /// trains on balanced sets of 2–5 seizures plus seizure-free samples).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidState`] if the dataset contains no seizure
    /// or no seizure-free windows.
    pub fn balance(&self, dataset: &Dataset) -> Result<Dataset, CoreError> {
        let selected = balanced_indices(dataset.labels())?;
        Ok(dataset.subset(&selected)?)
    }

    /// Trains the random forest on a labeled window dataset. Feature columns
    /// are standardized with statistics captured from this training set and
    /// re-applied at prediction time.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] if the forest cannot be fitted (for instance
    /// on an empty dataset).
    pub fn train(&mut self, dataset: &Dataset) -> Result<(), CoreError> {
        let f = dataset.num_features();
        let mut rows = Vec::with_capacity(dataset.len() * f);
        for row in dataset.features() {
            rows.extend_from_slice(row);
        }
        self.train_flat(&rows, f, dataset.labels())
    }

    /// Trains the forest directly from a flat row-major matrix
    /// (`labels.len() * num_features` values) through the parallel
    /// scratch-backed training engine — no `Vec<Vec<f64>>` round-trips. The
    /// fitted flat forest is bit-identical to the boxed
    /// [`RandomForest::fit`](seizure_ml::RandomForest::fit) path with the
    /// same data, configuration and seed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] if the matrix is malformed or the forest
    /// cannot be fitted.
    pub fn train_flat(
        &mut self,
        rows: &[f64],
        num_features: usize,
        labels: &[bool],
    ) -> Result<(), CoreError> {
        if num_features == 0 {
            return Err(seizure_ml::MlError::InvalidDataset {
                detail: "training requires at least one feature".to_string(),
            }
            .into());
        }
        let n = labels.len() as f64;
        let mut means = vec![0.0; num_features];
        for row in rows.chunks_exact(num_features) {
            for (m, x) in means.iter_mut().zip(row.iter()) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; num_features];
        for row in rows.chunks_exact(num_features) {
            for ((s, x), m) in stds.iter_mut().zip(row.iter()).zip(means.iter()) {
                *s += (x - m) * (x - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
        }
        let mut scaled = rows.to_vec();
        scale_flat(&mut scaled, &means, &stds);
        let set = TrainingSet::from_rows(&scaled, num_features, labels)?;
        self.flat = Some(train_forest(&set, &self.config.forest, self.config.seed)?);
        self.feature_means = means;
        self.feature_stds = stds;
        // A full batch fit supersedes any incremental pool — and any delta
        // journal bound to it; the next `save_delta` re-bases.
        self.incremental = None;
        self.delta = None;
        Ok(())
    }

    /// Adds new labeled windows (flat row-major, `labels.len() *
    /// num_features` values) to the detector's growing training pool and
    /// retrains through the [`IncrementalTrainer`]: the pool append sorts
    /// only the block-local presorted runs it touches, and only the trees
    /// whose bootstrap pools were touched by the growth are refitted —
    /// loading just their owned blocks — so the self-learning loop stops
    /// paying a full `train_forest` per missed seizure.
    ///
    /// Unlike [`RealTimeDetector::train_flat`], the incremental path trains
    /// on **raw** features (no standardization): forests split on per-feature
    /// thresholds, so the affine per-column scaling changes no decision
    /// boundary, and skipping it keeps every grown state identical to a
    /// from-scratch incremental fit of the final pool regardless of when
    /// which rows arrived. The feature statistics are cleared accordingly so
    /// the prediction paths feed raw features too.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidState`] if the detector currently holds a
    /// batch-trained model ([`RealTimeDetector::train`] /
    /// [`RealTimeDetector::train_flat`]): those paths do not retain their
    /// training rows, so incremental retraining cannot *extend* them — it
    /// would silently restart from an empty pool instead. Use a fresh
    /// detector (or keep retraining through the batch path).
    /// Returns [`CoreError::Ml`] if the matrix is malformed, its feature
    /// count drifts between calls, or the forest cannot be fitted.
    pub fn retrain_incremental(
        &mut self,
        rows: &[f64],
        num_features: usize,
        labels: &[bool],
    ) -> Result<(), CoreError> {
        if self.incremental.is_none() && self.flat.is_some() {
            return Err(CoreError::InvalidState {
                detail: "the detector holds a batch-trained model whose training rows were \
                         not retained; incremental retraining cannot extend it (train a \
                         fresh detector incrementally instead)"
                    .to_string(),
            });
        }
        let trainer = self.incremental.get_or_insert_with(|| {
            IncrementalTrainer::new(
                IncrementalTrainerConfig {
                    forest: self.config.forest,
                    block_size: self.config.incremental_block_size,
                },
                self.config.seed,
            )
        });
        self.flat = Some(trainer.retrain(rows, num_features, labels)?);
        self.feature_means.clear();
        self.feature_stds.clear();
        // With delta persistence armed, every accepted batch is journaled so
        // the next `save_delta` is an O(batch) append instead of an O(pool)
        // snapshot (`retrain` validated the shapes, so this cannot fail).
        if let Some(delta) = &mut self.delta {
            delta.writer.append_retrain(rows, num_features, labels)?;
        }
        Ok(())
    }

    /// The incremental retraining engine, once
    /// [`RealTimeDetector::retrain_incremental`] has run.
    pub fn incremental_trainer(&self) -> Option<&IncrementalTrainer> {
        self.incremental.as_ref()
    }

    /// The flat-compiled forest the inference paths run on, once trained.
    pub fn flat_forest(&self) -> Option<&FlatForest> {
        self.flat.as_ref()
    }

    /// Standardizes a flat row-major feature matrix in place with the
    /// statistics captured at training time (same arithmetic as the per-row
    /// scaling, fused over the whole batch). Raw-feature detectors — the
    /// incremental path clears the statistics — skip the pass entirely:
    /// without the early return, empty statistics would walk the whole
    /// matrix in single-element chunks doing nothing.
    fn scale_matrix_in_place(&self, data: &mut [f64]) {
        if self.feature_means.is_empty() {
            return;
        }
        scale_flat(data, &self.feature_means, &self.feature_stds);
    }

    /// Classifies every analysis window of `signal` (true = seizure alarm).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidState`] if the detector has not been trained
    /// and propagates feature-extraction failures.
    pub fn detect(&self, signal: &EegSignal) -> Result<Vec<bool>, CoreError> {
        let mut ws = FeatureWorkspace::new();
        self.detect_with(signal, &mut ws)
    }

    /// Multi-record twin of [`RealTimeDetector::detect`]: the workspace's
    /// feature buffer and scratch pool are reused across records instead of
    /// being re-grown per record.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RealTimeDetector::detect`].
    pub fn detect_with(
        &self,
        signal: &EegSignal,
        workspace: &mut FeatureWorkspace,
    ) -> Result<Vec<bool>, CoreError> {
        self.detect_into(signal, workspace)?;
        Ok(workspace.predictions.clone())
    }

    /// Allocation-free end of the detect path: classifies every window of
    /// `signal` into the workspace's prediction buffer (readable through
    /// [`FeatureWorkspace::predictions`]) and returns the window count.
    /// Extraction, standardization and the forest's batch prediction all run
    /// on workspace-owned buffers, so a sweep over many records touches the
    /// heap only when a record first outgrows them.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RealTimeDetector::detect`].
    // lint: hot-path
    pub fn detect_into(
        &self,
        signal: &EegSignal,
        workspace: &mut FeatureWorkspace,
    ) -> Result<usize, CoreError> {
        let forest = self.require_flat()?;
        let fs = signal.sampling_frequency();
        let window = self.window_config(fs)?;
        if self.config.quality_gate {
            self.assess_quality_into(signal, workspace)?;
            self.apply_gain_correction(signal, &window, workspace);
        } else {
            workspace.verdicts.clear();
            workspace.corrected_f7t3.clear();
            workspace.corrected_f8t4.clear();
        }
        let extractor = RichFeatureSet::new(fs)?;
        let FeatureWorkspace {
            matrix,
            pool,
            predictions,
            verdicts,
            corrected_f7t3,
            corrected_f8t4,
            ..
        } = workspace;
        let (f7t3, f8t4) = if corrected_f7t3.is_empty() {
            (signal.f7t3(), signal.f8t4())
        } else {
            (&corrected_f7t3[..], &corrected_f8t4[..])
        };
        extractor.extract_batch_into(f7t3, f8t4, &window, pool, matrix)?;
        let num_features = matrix.num_features();
        self.scale_matrix_in_place(matrix.data_mut());
        forest.predict_batch_into(matrix.data(), num_features, predictions)?;
        if self.config.quality_gate {
            // Fail closed: an artifact-dominated window never raises an alarm.
            for (p, v) in predictions.iter_mut().zip(verdicts.iter()) {
                if *v == QualityVerdict::Reject {
                    *p = false;
                }
            }
        } else {
            // Keep the verdict buffer aligned with the predictions so
            // `detect_with_quality` stays well-defined on ungated detectors.
            verdicts.clear();
            verdicts.resize(predictions.len(), QualityVerdict::Clean);
        }
        Ok(predictions.len())
    }

    /// Gated detect that also surfaces the per-window quality verdicts:
    /// returns `(predictions, verdicts)` borrowed from the workspace, one
    /// entry per analysis window. With the gate enabled, every `Reject`
    /// window's prediction is forced to `false`; with it disabled all
    /// verdicts read `Clean`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RealTimeDetector::detect`].
    pub fn detect_with_quality<'w>(
        &self,
        signal: &EegSignal,
        workspace: &'w mut FeatureWorkspace,
    ) -> Result<(&'w [bool], &'w [QualityVerdict]), CoreError> {
        self.detect_into(signal, workspace)?;
        Ok((&workspace.predictions, &workspace.verdicts))
    }

    /// Fills the workspace's quality matrix and verdict buffer for `signal`
    /// without touching the model: the per-window indicators of
    /// [`seizure_features::quality`] plus the gate's hysteresis verdicts.
    ///
    /// # Errors
    ///
    /// Propagates window-configuration and extraction failures.
    pub(crate) fn assess_quality_into(
        &self,
        signal: &EegSignal,
        workspace: &mut FeatureWorkspace,
    ) -> Result<(), CoreError> {
        let fs = signal.sampling_frequency();
        let window = self.window_config(fs)?;
        let extractor = QualityExtractor::new(fs)?;
        extractor.extract_batch_into(
            signal.f7t3(),
            signal.f8t4(),
            &window,
            &mut workspace.quality,
        )?;
        QualityGate::verdicts_into(&workspace.quality, &mut workspace.verdicts);
        Ok(())
    }

    /// Slow automatic gain correction: fits a robust (Theil–Sen) line to
    /// each channel's per-window log-std over the non-rejected windows and,
    /// when the fitted log-gain leaves the calibrated reference by more
    /// than [`AGC_DEADBAND`] anywhere in the record, rescales a copy of the
    /// channel towards the reference envelope before feature extraction.
    /// Inside the deadband the buffers stay empty and the detector is
    /// bit-identical to an ungated one — clean records never pay for the
    /// correction.
    fn apply_gain_correction(
        &self,
        signal: &EegSignal,
        window: &SlidingWindowConfig,
        workspace: &mut FeatureWorkspace,
    ) {
        workspace.corrected_f7t3.clear();
        workspace.corrected_f8t4.clear();
        if !self.gate.is_calibrated() {
            return;
        }
        let mut fits = [None, None];
        for (channel, fit) in fits.iter_mut().enumerate() {
            let column = quality::channel_column(channel, IDX_LOG_STD);
            let series: Vec<(f64, f64)> = workspace
                .verdicts
                .iter()
                .enumerate()
                .filter(|(_, v)| **v != QualityVerdict::Reject)
                .map(|(w, _)| (w as f64, workspace.quality.get(w, column)))
                .collect();
            if series.len() < AGC_MIN_WINDOWS {
                continue;
            }
            let (slope, intercept) = theil_sen(&series);
            // Deviation of the fitted envelope from the reference across
            // the whole record; inside the deadband nothing happens.
            let last = (workspace.verdicts.len() - 1) as f64;
            let dev0 = intercept - self.gate.ref_log_std[channel];
            let dev1 = slope * last + intercept - self.gate.ref_log_std[channel];
            if dev0.abs() <= AGC_DEADBAND && dev1.abs() <= AGC_DEADBAND {
                continue;
            }
            *fit = Some((slope, intercept - self.gate.ref_log_std[channel]));
        }
        if fits.iter().all(Option::is_none) {
            return;
        }
        let half_window = window.window_samples() as f64 / 2.0;
        let step = window.step_samples() as f64;
        let limit = (workspace.verdicts.len().max(1) - 1) as f64;
        for (channel, raw) in [signal.f7t3(), signal.f8t4()].into_iter().enumerate() {
            let out = if channel == 0 {
                &mut workspace.corrected_f7t3
            } else {
                &mut workspace.corrected_f8t4
            };
            out.reserve(raw.len());
            match fits[channel] {
                None => out.extend_from_slice(raw),
                Some((slope, offset)) => {
                    for (s, &x) in raw.iter().enumerate() {
                        // Continuous window coordinate of this sample,
                        // clamped to the fitted range.
                        let w = ((s as f64 - half_window) / step).clamp(0.0, limit);
                        let correction = (-(slope * w + offset))
                            .exp()
                            .clamp(1.0 / AGC_MAX_CORRECTION, AGC_MAX_CORRECTION);
                        out.push(x * correction);
                    }
                }
            }
        }
    }

    /// Calibrates the quality gate's amplitude reference from a record with
    /// a known seizure position: every `Clean`-verdict non-seizure window
    /// folds its per-channel log-std into the running reference mean. The
    /// self-learning pipeline calls this for each training record it
    /// accepts, so the gate's idea of "normal amplitude" is personalized
    /// alongside the forest.
    ///
    /// # Errors
    ///
    /// Propagates extraction and window-labeling failures.
    pub fn calibrate_quality(
        &mut self,
        signal: &EegSignal,
        label: &SeizureLabel,
    ) -> Result<(), CoreError> {
        let mut ws = FeatureWorkspace::new();
        self.calibrate_quality_with(signal, label, &mut ws)
    }

    /// Workspace-reusing twin of [`RealTimeDetector::calibrate_quality`]
    /// (leaves the quality matrix and verdicts readable in the workspace).
    ///
    /// # Errors
    ///
    /// Propagates extraction and window-labeling failures.
    pub fn calibrate_quality_with(
        &mut self,
        signal: &EegSignal,
        label: &SeizureLabel,
        workspace: &mut FeatureWorkspace,
    ) -> Result<(), CoreError> {
        let fs = signal.sampling_frequency();
        let window = self.window_config(fs)?;
        self.assess_quality_into(signal, workspace)?;
        let truth = window_labels(
            label,
            workspace.verdicts.len(),
            window.window_seconds(),
            window.step_seconds(),
        )?;
        self.calibrate_from_quality(&workspace.quality, &workspace.verdicts, &truth);
        Ok(())
    }

    /// Calibration core shared with the pipeline (which already holds the
    /// record's quality matrix and verdicts in its workspace): folds every
    /// `Clean` non-seizure window into the gate's amplitude reference.
    pub(crate) fn calibrate_from_quality(
        &mut self,
        quality_matrix: &FeatureMatrix,
        verdicts: &[QualityVerdict],
        truth: &[bool],
    ) {
        for (w, (&seizure, verdict)) in truth.iter().zip(verdicts.iter()).enumerate() {
            if !seizure && *verdict == QualityVerdict::Clean {
                self.gate.calibrate(
                    quality_matrix.get(w, quality::channel_column(0, IDX_LOG_STD)),
                    quality_matrix.get(w, quality::channel_column(1, IDX_LOG_STD)),
                );
            }
        }
    }

    fn require_flat(&self) -> Result<&FlatForest, CoreError> {
        self.flat.as_ref().ok_or_else(|| CoreError::InvalidState {
            detail: "the real-time detector has not been trained yet".to_string(),
        })
    }

    /// Classifies pre-extracted rich-feature rows through the flat batch
    /// path. Predictions are identical to the boxed per-row path (the flat
    /// forest is a bit-exact compilation of the fitted ensemble).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidState`] if the detector has not been
    /// trained and [`CoreError::InvalidParameter`] if the rows disagree with
    /// the training feature count.
    pub fn predict_rows(&self, rows: &[Vec<f64>]) -> Result<Vec<bool>, CoreError> {
        let mut ws = FeatureWorkspace::new();
        Ok(self.predict_rows_with(rows, &mut ws)?.to_vec())
    }

    /// Multi-call twin of [`RealTimeDetector::predict_rows`]: the rows are
    /// staged into the workspace's flat buffer and classified into its
    /// prediction buffer (like [`RealTimeDetector::detect_into`] does), so
    /// repeated calls stop allocating a fresh flat matrix each time. Returns
    /// the predictions borrowed from the workspace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RealTimeDetector::predict_rows`].
    pub fn predict_rows_with<'w>(
        &self,
        rows: &[Vec<f64>],
        workspace: &'w mut FeatureWorkspace,
    ) -> Result<&'w [bool], CoreError> {
        let forest = self.require_flat()?;
        let num_features = forest.num_features();
        if let Some(bad) = rows.iter().find(|r| r.len() != num_features) {
            return Err(CoreError::InvalidParameter {
                name: "rows",
                reason: format!(
                    "row has {} features but the detector was trained on {num_features}",
                    bad.len()
                ),
            });
        }
        workspace.row_buf.clear();
        workspace.row_buf.reserve(rows.len() * num_features);
        for row in rows {
            workspace.row_buf.extend_from_slice(row);
        }
        self.scale_matrix_in_place(&mut workspace.row_buf);
        forest.predict_batch_into(&workspace.row_buf, num_features, &mut workspace.predictions)?;
        Ok(&workspace.predictions)
    }

    /// Serializes the detector's full state — configuration, model, feature
    /// statistics and (when trained incrementally) the whole retraining
    /// engine including its sample pool — into the versioned binary snapshot
    /// format of [`seizure_ml::persist`], so a wearable can power down and
    /// [`RealTimeDetector::load_state`] can resume exactly where it left
    /// off. Batch-trained detectors store their standardization statistics
    /// alongside the forest; incremental detectors are marked raw-feature
    /// (the incremental path trains unstandardized) and store the trainer
    /// instead, from which the forest is re-stitched on load.
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        self.write_state_body(&mut w);
        w.finish(SnapshotKind::RealTimeDetector)
    }

    /// Writes the payload of a [`RealTimeDetector::save_state`] snapshot
    /// into `w`. The model sections nest their child envelopes **in place**
    /// (`begin_nested` / `end_nested` back-patch length and checksum), so a
    /// save never memcpys the O(pool) trainer payload through intermediate
    /// buffers — the bytes are identical to the copying path, minus the
    /// copies. The pipeline calls this to nest a detector inside its own
    /// snapshot the same way.
    pub(crate) fn write_state_body(&self, w: &mut SnapshotWriter) {
        w.f64(self.config.window_secs);
        w.f64(self.config.overlap);
        persist::write_forest_config(w, &self.config.forest);
        w.u64(self.config.seed);
        w.usize(self.config.incremental_block_size);
        // Quality-gate block (format version 2): enable flag plus the
        // calibrated amplitude reference. Fixed 25 bytes, so the edge
        // memory model can budget it as a constant.
        w.bool(self.config.quality_gate);
        w.f64(self.gate.ref_log_std[0]);
        w.f64(self.gate.ref_log_std[1]);
        w.f64(self.gate.ref_weight);
        match (&self.incremental, &self.flat) {
            (Some(trainer), _) => {
                w.u8(MODEL_INCREMENTAL);
                let child = w.begin_nested(SnapshotKind::IncrementalTrainer);
                persist::write_trainer_body(w, trainer);
                w.end_nested(child);
            }
            (None, Some(forest)) => {
                w.u8(MODEL_BATCH);
                w.slice_f64(&self.feature_means);
                w.slice_f64(&self.feature_stds);
                let child = w.begin_nested(SnapshotKind::FlatForest);
                persist::write_forest_body(w, forest);
                w.end_nested(child);
            }
            (None, None) => w.u8(MODEL_UNTRAINED),
        }
    }

    /// Restores a detector from a [`RealTimeDetector::save_state`] snapshot.
    /// The restored detector is state-identical to the saved one: a
    /// batch-trained detector keeps its statistics and forest bit for bit,
    /// and an incremental detector's next
    /// [`RealTimeDetector::retrain_incremental`] emits a forest
    /// node-identical to the one an uninterrupted detector would produce.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Persist`] for truncated, foreign, corrupted,
    /// version-mismatched or internally inconsistent snapshots — never a
    /// panic.
    pub fn load_state(bytes: &[u8]) -> Result<Self, CoreError> {
        let mut r = SnapshotReader::open(bytes, SnapshotKind::RealTimeDetector)?;
        let window_secs = r.f64()?;
        let overlap = r.f64()?;
        let forest_config = persist::read_forest_config(&mut r)?;
        let seed = r.u64()?;
        let incremental_block_size = r.usize()?;
        let quality_gate = r.bool()?;
        let ref_a = r.f64()?;
        let ref_b = r.f64()?;
        let ref_weight = r.f64()?;
        if !(ref_a.is_finite() && ref_b.is_finite() && ref_weight.is_finite() && ref_weight >= 0.0)
        {
            return Err(PersistError::Corrupted {
                detail: "quality-gate calibration is not finite".to_string(),
            }
            .into());
        }
        let config = RealTimeDetectorConfig {
            window_secs,
            overlap,
            forest: forest_config,
            seed,
            incremental_block_size,
            quality_gate,
        };
        let mut detector = Self::new(config);
        detector.gate = QualityGate {
            ref_log_std: [ref_a, ref_b],
            ref_weight,
        };
        match r.u8()? {
            MODEL_UNTRAINED => {}
            MODEL_BATCH => {
                detector.feature_means = r.slice_f64()?;
                detector.feature_stds = r.slice_f64()?;
                if detector.feature_means.len() != detector.feature_stds.len() {
                    return Err(PersistError::Corrupted {
                        detail: "feature means and stds disagree in length".to_string(),
                    }
                    .into());
                }
                let forest = persist::forest_from_bytes(r.nested()?)?;
                if detector.feature_means.len() != forest.num_features() {
                    return Err(PersistError::Corrupted {
                        detail: format!(
                            "feature statistics cover {} features but the forest was trained \
                             on {}",
                            detector.feature_means.len(),
                            forest.num_features()
                        ),
                    }
                    .into());
                }
                detector.flat = Some(forest);
            }
            MODEL_INCREMENTAL => {
                let trainer = persist::trainer_from_bytes(r.nested()?)?;
                if *trainer.config()
                    != (IncrementalTrainerConfig {
                        forest: config.forest,
                        block_size: config.incremental_block_size,
                    })
                    || trainer.seed() != config.seed
                {
                    return Err(PersistError::Corrupted {
                        detail: "embedded trainer disagrees with the detector configuration"
                            .to_string(),
                    }
                    .into());
                }
                detector.flat = trainer.current_forest();
                detector.incremental = Some(trainer);
            }
            marker => {
                return Err(PersistError::Corrupted {
                    detail: format!("unknown detector model marker {marker}"),
                }
                .into())
            }
        }
        r.finish()?;
        Ok(detector)
    }

    /// Per-seizure persistence: returns the **delta** Flash write that makes
    /// the detector's current state durable, instead of re-writing the whole
    /// O(pool) snapshot every time.
    ///
    /// * The first call (or any call after [`RealTimeDetector::train_flat`]
    ///   re-based the model) returns [`DeltaSave::Full`]: write these bytes
    ///   as the base snapshot and erase the journal region.
    /// * Steady state returns [`DeltaSave::Append`] with the journal entries
    ///   recorded since the last save — O(batch) — to append to the journal
    ///   region.
    /// * Once the journal outgrows the [`CompactionPolicy`] (default
    ///   policy; see [`RealTimeDetector::save_delta_with`]), the journal is
    ///   folded into a fresh [`DeltaSave::Full`] base and starts empty
    ///   again.
    /// * With nothing new to persist it returns [`DeltaSave::Clean`].
    ///
    /// Restore with [`RealTimeDetector::load_with_journal`], handing it the
    /// base region and the journal region.
    pub fn save_delta(&mut self) -> DeltaSave {
        self.save_delta_with(CompactionPolicy::default())
    }

    /// [`RealTimeDetector::save_delta`] under an explicit compaction policy.
    pub fn save_delta_with(&mut self, policy: CompactionPolicy) -> DeltaSave {
        if let Some(save) = self.delta.as_mut().and_then(|d| d.save(policy)) {
            return save;
        }
        self.rebase_delta()
    }

    /// Writes a fresh full base snapshot and arms an empty journal over it.
    fn rebase_delta(&mut self) -> DeltaSave {
        let base = self.save_state();
        let pool = self.incremental.as_ref().map_or(0, |t| t.num_samples());
        let writer = JournalWriter::new(&base, pool).expect("save_state emits a valid envelope");
        self.delta = Some(DeltaState {
            writer,
            base_len: base.len(),
        });
        DeltaSave::Full(base)
    }

    /// Formats `flash` as a crash-proof A/B [`FlashStore`], commits the
    /// detector's current state as the first base and arms delta
    /// persistence — the first-boot counterpart of
    /// [`RealTimeDetector::resume_from_store`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Persist`] when the geometry does not fit the device or
    /// the snapshot does not fit a slot.
    pub fn init_store<F: Flash>(
        &mut self,
        flash: F,
        geometry: FlashGeometry,
    ) -> Result<FlashStore<F>, CoreError> {
        let DeltaSave::Full(base) = self.rebase_delta() else {
            unreachable!("rebase always yields a full snapshot");
        };
        Ok(FlashStore::format(flash, geometry, &base)?)
    }

    /// Persists the detector through a crash-proof [`FlashStore`]: a clean
    /// state writes nothing, new batches append one O(batch) journal entry,
    /// and once the journal passes the store's capacity-derived
    /// [`FlashStore::compaction_policy`] (or a single entry outgrows the
    /// region) the state is compacted into the inactive base slot.
    ///
    /// A power loss at **any byte** of the underlying writes leaves the
    /// previous state recoverable by [`FlashStore::mount`] +
    /// [`RealTimeDetector::resume_from_store`] — the crash-injection suite
    /// sweeps every offset.
    ///
    /// # Errors
    ///
    /// [`CoreError::Persist`] for store or Flash failures. After an error
    /// the in-RAM delta bookkeeping may be ahead of the device; recover by
    /// remounting and resuming, as a real device would after the crash.
    pub fn save_to_store<F: Flash>(
        &mut self,
        store: &mut FlashStore<F>,
    ) -> Result<StoreSave, CoreError> {
        match self.save_delta_with(store.compaction_policy()) {
            DeltaSave::Clean => Ok(StoreSave::Clean),
            DeltaSave::Full(base) => {
                store.commit_base(&base)?;
                Ok(StoreSave::Rebased)
            }
            DeltaSave::Append(entry) => {
                if entry.len() <= store.journal_remaining() {
                    store.append_journal(&entry)?;
                    Ok(StoreSave::Appended)
                } else {
                    // One batch outgrew the whole journal region: fold the
                    // current state into a fresh base instead of failing.
                    let DeltaSave::Full(base) = self.rebase_delta() else {
                        unreachable!("rebase always yields a full snapshot");
                    };
                    store.commit_base(&base)?;
                    Ok(StoreSave::Rebased)
                }
            }
        }
    }

    /// Restores a detector from a mounted [`FlashStore`]: replays the
    /// journal prefix the store arbitrated onto the committed base and arms
    /// delta persistence for the next
    /// [`RealTimeDetector::save_to_store`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Persist`] under the same conditions as
    /// [`RealTimeDetector::load_with_journal`].
    pub fn resume_from_store<F: Flash>(
        store: &FlashStore<F>,
    ) -> Result<(Self, JournalReplayReport), CoreError> {
        let base = store.base()?;
        let journal_bytes = store.journal()?;
        Self::load_with_journal(&base, &journal_bytes)
    }

    /// Restores a detector from a base snapshot plus its delta journal and
    /// arms delta persistence so the next
    /// [`RealTimeDetector::save_delta`] keeps appending to the same journal.
    /// Replay re-applies each journaled batch through
    /// [`RealTimeDetector::retrain_incremental`], so the restored detector
    /// is node-identical to the one that never powered down. A torn final
    /// entry (power loss mid-append) is dropped; the report's `valid_len`
    /// tells the device where to truncate its journal file before appending
    /// again.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Persist`] for a malformed base snapshot, for
    /// journal corruption that is not a clean tail tear (bad magic, foreign
    /// version, checksum mismatch, wrong kind), and for entries that do not
    /// belong (wrong base fingerprint, wrong pool position, or a batch the
    /// trainer no longer accepts) — never a panic, and a batch is never
    /// half-applied.
    pub fn load_with_journal(
        base: &[u8],
        journal_bytes: &[u8],
    ) -> Result<(Self, JournalReplayReport), CoreError> {
        let mut detector = Self::load_state(base)?;
        let fingerprint = journal::base_fingerprint(base)?;
        let scan = journal::scan_journal(journal_bytes)?;
        for (i, entry) in scan.entries.iter().enumerate() {
            detector.apply_journal_entry(entry, fingerprint, i)?;
        }
        detector.delta = Some(DeltaState {
            writer: JournalWriter::resume(
                fingerprint,
                detector.incremental.as_ref().map_or(0, |t| t.num_samples()),
                scan.valid_len,
                scan.entries.len(),
            ),
            base_len: base.len(),
        });
        Ok((
            detector,
            JournalReplayReport {
                entries_applied: scan.entries.len(),
                valid_len: scan.valid_len,
                torn_bytes: scan.torn_bytes,
            },
        ))
    }

    /// Validates one journal entry's bindings against this detector
    /// (sharing `journal::validate_entry` with the bare trainer-level
    /// replay, so the rules cannot diverge) and re-applies its batch. Used
    /// by the detector- and pipeline-level journal restores.
    pub(crate) fn apply_journal_entry(
        &mut self,
        entry: &JournalEntry,
        fingerprint: u64,
        index: usize,
    ) -> Result<(), CoreError> {
        let pool = self.incremental.as_ref().map_or(0, |t| t.num_samples());
        journal::validate_entry(entry, fingerprint, pool, index)?;
        self.retrain_incremental(&entry.rows, entry.num_features, &entry.labels)
            .map_err(|e| {
                PersistError::Corrupted {
                    detail: format!("journal entry {index} does not re-apply: {e}"),
                }
                .into()
            })
    }

    /// Evaluates the detector on a signal whose true seizure position is known,
    /// returning the per-window confusion matrix.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`RealTimeDetector::detect`].
    pub fn evaluate(
        &self,
        signal: &EegSignal,
        truth: &SeizureLabel,
    ) -> Result<ConfusionMatrix, CoreError> {
        let mut ws = FeatureWorkspace::new();
        self.evaluate_with(signal, truth, &mut ws)
    }

    /// Multi-record twin of [`RealTimeDetector::evaluate`], reusing the
    /// workspace across records of an evaluation sweep.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`RealTimeDetector::detect_with`].
    pub fn evaluate_with(
        &self,
        signal: &EegSignal,
        truth: &SeizureLabel,
        workspace: &mut FeatureWorkspace,
    ) -> Result<ConfusionMatrix, CoreError> {
        let fs = signal.sampling_frequency();
        let window = self.window_config(fs)?;
        let count = self.detect_into(signal, workspace)?;
        let truth_labels =
            window_labels(truth, count, window.window_seconds(), window.step_seconds())?;
        Ok(ConfusionMatrix::from_predictions(
            &workspace.predictions,
            &truth_labels,
        )?)
    }

    /// Builds a sample-at-a-time streaming front end over this trained
    /// detector for signals sampled at `fs` Hz: feed it one sample pair per
    /// tick through [`StreamingDetector::push`] and it emits one
    /// [`StreamingDetection`] per completed analysis window, reusing the
    /// hop-structured extraction state across the 75 % window overlap
    /// instead of recomputing each window from scratch.
    ///
    /// The streaming path matches [`RealTimeDetector::detect`] window for
    /// window on a detector whose quality gate is uncalibrated, up to the
    /// bounded floating-point error of the streaming extractor (see
    /// [`seizure_features::streaming`]). One documented behavioural
    /// difference: the record-level slow gain correction (AGC) is a
    /// whole-record robust fit and is **not** applied while streaming, so a
    /// calibrated gate may rescale batch inputs where the streaming path
    /// classifies the raw samples.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidState`] if the detector is untrained and
    /// propagates configuration errors (e.g. a window geometry whose hop
    /// cannot be streamed).
    pub fn streaming(&self, fs: f64) -> Result<StreamingDetector<'_>, CoreError> {
        let forest = self.require_flat()?;
        let window = self.window_config(fs)?;
        let extractor = StreamingRichExtractor::new(&window)?;
        let hop = window.step_samples();
        let num_features = extractor.num_features();
        Ok(StreamingDetector {
            detector: self,
            forest,
            quality: QualityExtractor::new(fs)?,
            quality_scratch: QualityScratch::default(),
            quality_row: [0.0; NUM_QUALITY_FEATURES],
            extractor,
            row: vec![0.0; num_features],
            hop_a: vec![0.0; hop],
            hop_b: vec![0.0; hop],
            fill: 0,
            prev_verdict: QualityVerdict::Clean,
            window_index: 0,
        })
    }
}

/// One completed analysis window emitted by [`StreamingDetector::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingDetection {
    /// Zero-based index of the completed window (same indexing as the
    /// per-window vectors of [`RealTimeDetector::detect`]).
    pub window_index: usize,
    /// The gated alarm: the forest's prediction, forced to `false` on
    /// `Reject` windows when the quality gate is enabled.
    pub alarm: bool,
    /// The signal-quality verdict of the window (always `Clean` when the
    /// gate is disabled).
    pub verdict: QualityVerdict,
}

/// Sample-at-a-time detection front end borrowed from a trained
/// [`RealTimeDetector`] (see [`RealTimeDetector::streaming`]).
///
/// Samples are buffered into hops; each hop advances the carried extraction
/// state ([`StreamingRichExtractor`]), and once a full window of hops is in
/// flight every further hop completes one window: quality verdict (with the
/// same Schmitt-trigger hysteresis as the batch gate), standardization with
/// the training statistics, forest classification and alarm gating. After
/// the warm-up allocations in [`RealTimeDetector::streaming`], pushing
/// samples performs no heap allocation.
#[derive(Debug)]
pub struct StreamingDetector<'a> {
    detector: &'a RealTimeDetector,
    forest: &'a FlatForest,
    extractor: StreamingRichExtractor,
    quality: QualityExtractor,
    quality_scratch: QualityScratch,
    quality_row: [f64; NUM_QUALITY_FEATURES],
    row: Vec<f64>,
    hop_a: Vec<f64>,
    hop_b: Vec<f64>,
    fill: usize,
    prev_verdict: QualityVerdict,
    window_index: usize,
}

impl StreamingDetector<'_> {
    /// Number of samples per analysis window.
    pub fn window_samples(&self) -> usize {
        self.extractor.window_samples()
    }

    /// Number of samples between consecutive detections (the hop).
    pub fn step_samples(&self) -> usize {
        self.extractor.step_samples()
    }

    /// Index the next completed window will carry.
    pub fn next_window_index(&self) -> usize {
        self.window_index
    }

    /// Bytes of state carried across hops (the extractor's ring buffers and
    /// carried operator state plus the hop staging buffers); the edge memory
    /// model prices the extractor part as
    /// `seizure_edge::memory::streaming_state_bytes`.
    pub fn state_bytes(&self) -> usize {
        self.extractor.state_bytes() + (self.hop_a.len() + self.hop_b.len()) * 8
    }

    /// Forgets all carried signal state (keeping the borrowed model) so the
    /// next sample starts a new record; the quality gate's hysteresis is
    /// reset to `Clean` and window indices restart at zero.
    pub fn reset(&mut self) {
        self.extractor.reset();
        self.fill = 0;
        self.prev_verdict = QualityVerdict::Clean;
        self.window_index = 0;
    }

    /// Ingests one sample pair (F7T3, F8T4). Returns `Ok(None)` until the
    /// sample completes an analysis window — every `window_samples()`-th
    /// sample at first, then every `step_samples()`-th — and the completed
    /// window's [`StreamingDetection`] afterwards.
    ///
    /// # Errors
    ///
    /// Propagates numeric extraction failures.
    // lint: hot-path
    pub fn push(&mut self, f7t3: f64, f8t4: f64) -> Result<Option<StreamingDetection>, CoreError> {
        self.hop_a[self.fill] = f7t3;
        self.hop_b[self.fill] = f8t4;
        self.fill += 1;
        if self.fill < self.hop_a.len() {
            return Ok(None);
        }
        self.fill = 0;
        let completed = self
            .extractor
            .push_hop(&self.hop_a, &self.hop_b, &mut self.row)?;
        if !completed {
            return Ok(None);
        }
        let verdict = if self.detector.config.quality_gate {
            self.quality.assess_window_into(
                self.extractor.current_window(0),
                self.extractor.current_window(1),
                &mut self.quality_row,
                &mut self.quality_scratch,
            )?;
            let verdict = QualityGate::next_verdict(
                QualityGate::raw_level(&self.quality_row),
                self.prev_verdict,
            );
            self.prev_verdict = verdict;
            verdict
        } else {
            QualityVerdict::Clean
        };
        if !self.detector.feature_means.is_empty() {
            scale_flat(
                &mut self.row,
                &self.detector.feature_means,
                &self.detector.feature_stds,
            );
        }
        let mut alarm = self.forest.predict(&self.row);
        if self.detector.config.quality_gate && verdict == QualityVerdict::Reject {
            alarm = false;
        }
        let detection = StreamingDetection {
            window_index: self.window_index,
            alarm,
            verdict,
        };
        self.window_index += 1;
        Ok(Some(detection))
    }
}

/// Balanced training selection over per-window labels: every seizure window
/// plus an equal number of evenly spaced seizure-free windows, positives
/// first (the pipeline re-spreads the two halves proportionally before
/// staging them into the incremental pool, so ownership blocks mix both
/// classes).
///
/// # Errors
///
/// Returns [`CoreError::InvalidState`] if either class is absent.
pub fn balanced_indices(labels: &[bool]) -> Result<Vec<usize>, CoreError> {
    let positive_idx: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter_map(|(i, &l)| l.then_some(i))
        .collect();
    let negative_idx: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter_map(|(i, &l)| (!l).then_some(i))
        .collect();
    if positive_idx.is_empty() || negative_idx.is_empty() {
        return Err(CoreError::InvalidState {
            detail: "balancing requires both seizure and seizure-free windows".to_string(),
        });
    }
    let take = positive_idx.len().min(negative_idx.len());
    // Evenly spaced negatives avoid clustering right at the label boundary.
    let stride = (negative_idx.len() as f64 / take as f64).max(1.0);
    let mut selected = positive_idx;
    for j in 0..take {
        let idx = (j as f64 * stride) as usize;
        selected.push(negative_idx[idx.min(negative_idx.len() - 1)]);
    }
    Ok(selected)
}

/// Deterministic Theil–Sen line fit `y ≈ slope · x + intercept`: median of
/// all pairwise slopes, then median of the per-point intercepts under that
/// slope. Robust up to ~29 % outliers — enough to fit a record's amplitude
/// envelope through its seizure windows.
fn theil_sen(points: &[(f64, f64)]) -> (f64, f64) {
    debug_assert!(points.len() >= 2);
    let mut slopes = Vec::with_capacity(points.len() * (points.len() - 1) / 2);
    for (i, &(xi, yi)) in points.iter().enumerate() {
        for &(xj, yj) in &points[i + 1..] {
            if xj != xi {
                slopes.push((yj - yi) / (xj - xi));
            }
        }
    }
    let slope = median_in_place(&mut slopes).unwrap_or(0.0);
    let mut intercepts: Vec<f64> = points.iter().map(|&(x, y)| y - slope * x).collect();
    let intercept = median_in_place(&mut intercepts).unwrap_or(0.0);
    (slope, intercept)
}

/// Median by sorting in place (lower median for even lengths — a real data
/// point, and deterministic).
fn median_in_place(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    // `total_cmp`, not `partial_cmp().expect(...)`: a NaN slope (possible when
    // a poisoned window reaches the AGC fit) sorts to the top instead of
    // panicking mid-detect, and the lower median stays a real data point.
    values.sort_by(f64::total_cmp);
    Some(values[(values.len() - 1) / 2])
}

/// Standardizes a flat row-major matrix in place: `(x - mean) / std` per
/// column, skipping the division for zero-variance columns.
fn scale_flat(data: &mut [f64], means: &[f64], stds: &[f64]) {
    let f = means.len().max(1);
    for row in data.chunks_mut(f) {
        for ((x, m), s) in row.iter_mut().zip(means.iter()).zip(stds.iter()) {
            *x = if *s > 0.0 { (*x - *m) / *s } else { *x - *m };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seizure_data::cohort::Cohort;
    use seizure_data::sampler::SampleConfig;
    use seizure_ml::persist::store::{FaultyFlash, MemFlash};

    fn record_and_truth(seed: u64) -> (seizure_data::sampler::EegRecord, SeizureLabel) {
        let cohort = Cohort::chb_mit_like(3);
        let config = SampleConfig::new(180.0, 220.0, 64.0).unwrap();
        let record = cohort.sample_record(8, 0, &config, seed).unwrap(); // patient 9: clean
        let truth =
            SeizureLabel::new(record.annotation().onset(), record.annotation().offset()).unwrap();
        (record, truth)
    }

    fn fast_config() -> RealTimeDetectorConfig {
        RealTimeDetectorConfig {
            forest: RandomForestConfig {
                n_trees: 10,
                max_depth: 6,
                ..RandomForestConfig::default()
            },
            ..RealTimeDetectorConfig::default()
        }
    }

    #[test]
    fn median_ranks_nan_worst_instead_of_panicking() {
        // Regression for the NaN-unsafe Theil–Sen sort: the former
        // `partial_cmp().expect("finite values")` comparator panicked on a
        // NaN slope; `total_cmp` sorts it last, so the lower median is still
        // a real data point.
        let mut values = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(median_in_place(&mut values), Some(2.0));
        let mut all_nan = [f64::NAN, f64::NAN];
        assert!(median_in_place(&mut all_nan).unwrap().is_nan());
    }

    #[test]
    fn untrained_detector_refuses_to_predict() {
        let detector = RealTimeDetector::new(fast_config());
        assert!(!detector.is_trained());
        let (record, _) = record_and_truth(0);
        assert!(matches!(
            detector.detect(record.signal()),
            Err(CoreError::InvalidState { .. })
        ));
    }

    #[test]
    fn trains_and_detects_the_seizure_it_was_trained_on() {
        let (record, truth) = record_and_truth(1);
        let mut detector = RealTimeDetector::new(fast_config());
        let training = detector
            .build_training_windows(record.signal(), &truth)
            .unwrap();
        let balanced = detector.balance(&training).unwrap();
        detector.train(&balanced).unwrap();
        assert!(detector.is_trained());

        let cm = detector.evaluate(record.signal(), &truth).unwrap();
        // Training data, so the detector should do very well.
        assert!(cm.sensitivity() > 0.7, "sensitivity = {}", cm.sensitivity());
        assert!(cm.specificity() > 0.7, "specificity = {}", cm.specificity());
    }

    #[test]
    fn generalizes_to_another_record_of_the_same_patient() {
        let (train_record, train_truth) = record_and_truth(2);
        let (test_record, test_truth) = record_and_truth(3);
        let mut detector = RealTimeDetector::new(fast_config());
        let training = detector
            .build_training_windows(train_record.signal(), &train_truth)
            .unwrap();
        let balanced = detector.balance(&training).unwrap();
        detector.train(&balanced).unwrap();
        let cm = detector
            .evaluate(test_record.signal(), &test_truth)
            .unwrap();
        assert!(cm.geometric_mean() > 0.6, "gmean = {}", cm.geometric_mean());
    }

    #[test]
    fn balance_produces_equal_class_counts() {
        let (record, truth) = record_and_truth(4);
        let detector = RealTimeDetector::new(fast_config());
        let training = detector
            .build_training_windows(record.signal(), &truth)
            .unwrap();
        let balanced = detector.balance(&training).unwrap();
        assert_eq!(balanced.num_positive(), balanced.num_negative());
        assert!(balanced.len() < training.len());
    }

    #[test]
    fn balance_requires_both_classes() {
        let detector = RealTimeDetector::new(fast_config());
        let all_negative = Dataset::new(vec![vec![1.0]; 5], vec![false; 5]).unwrap();
        assert!(detector.balance(&all_negative).is_err());
        let all_positive = Dataset::new(vec![vec![1.0]; 5], vec![true; 5]).unwrap();
        assert!(detector.balance(&all_positive).is_err());
    }

    #[test]
    fn batch_detection_is_consistent_across_entry_points() {
        let (record, truth) = record_and_truth(5);
        let mut detector = RealTimeDetector::new(fast_config());
        let training = detector
            .build_training_windows(record.signal(), &truth)
            .unwrap();
        detector
            .train(&detector.balance(&training).unwrap())
            .unwrap();
        assert!(detector.flat_forest().is_some());

        let batch = detector.detect(record.signal()).unwrap();
        let rows = detector
            .extract_feature_matrix(record.signal())
            .unwrap()
            .to_rows();
        let via_rows = detector.predict_rows(&rows).unwrap();
        assert_eq!(batch, via_rows);

        // The workspace-reusing paths agree with the allocating ones and
        // leave their results readable from the workspace.
        let mut ws = FeatureWorkspace::new();
        let count = detector.detect_into(record.signal(), &mut ws).unwrap();
        assert_eq!(count, batch.len());
        assert_eq!(ws.predictions(), &batch[..]);
        let via_rows_ws = detector.predict_rows_with(&rows, &mut ws).unwrap();
        assert_eq!(via_rows_ws, &batch[..]);

        // Mismatched row widths are rejected instead of panicking.
        assert!(detector.predict_rows(&[vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn fractional_overlap_detector_keeps_window_label_alignment() {
        // Regression for the window-step rounding drift: at 60 % overlap the
        // exact step is fractional (1.6 s at 64 Hz = 102.4 samples); the
        // detector must round it (102) and keep per-window labels aligned
        // with the realized step through training and evaluation.
        let (record, truth) = record_and_truth(6);
        let mut detector = RealTimeDetector::new(RealTimeDetectorConfig {
            overlap: 0.6,
            ..fast_config()
        });
        let window = detector
            .window_config(record.signal().sampling_frequency())
            .unwrap();
        assert_eq!(window.window_samples(), 256);
        assert_eq!(window.step_samples(), 102);
        let realized = (window.window_samples() - window.step_samples()) as f64;
        assert!((realized - 256.0 * 0.6).abs() <= 1.0);

        let training = detector
            .build_training_windows(record.signal(), &truth)
            .unwrap();
        detector
            .train(&detector.balance(&training).unwrap())
            .unwrap();
        let cm = detector.evaluate(record.signal(), &truth).unwrap();
        assert_eq!(cm.total(), training.len());
    }

    #[test]
    fn incremental_retraining_matches_single_shot_and_reuses_trees() {
        // Feed the detector the way the pipeline does: balanced per-record
        // batches (so ownership blocks mix both classes), appended in two
        // steps, against a single-shot incremental fit of the final pool.
        let (record, truth) = record_and_truth(7);
        let config = fast_config();
        let mut detector = RealTimeDetector::new(config);
        let training = detector
            .build_training_windows(record.signal(), &truth)
            .unwrap();
        let balanced = detector.balance(&training).unwrap();
        let nf = balanced.num_features();
        let rows: Vec<f64> = balanced.features().iter().flatten().copied().collect();
        let labels = balanced.labels();
        let cut = balanced.len() / 2;

        // Two appends through one detector...
        detector
            .retrain_incremental(&rows[..cut * nf], nf, &labels[..cut])
            .unwrap();
        let first_refits = detector.incremental_trainer().unwrap().last_refit_count();
        detector
            .retrain_incremental(&rows[cut * nf..], nf, &labels[cut..])
            .unwrap();
        let trainer = detector.incremental_trainer().unwrap();
        assert_eq!(trainer.num_samples(), balanced.len());
        assert!(trainer.last_refit_count() <= first_refits);

        // ...equal one single-shot incremental fit on the final pool.
        let mut reference = RealTimeDetector::new(config);
        reference.retrain_incremental(&rows, nf, labels).unwrap();
        assert_eq!(detector.flat_forest(), reference.flat_forest());
        assert_eq!(
            detector.detect(record.signal()).unwrap(),
            reference.detect(record.signal()).unwrap()
        );

        // The incrementally trained detector is a usable seizure detector.
        let cm = detector.evaluate(record.signal(), &truth).unwrap();
        assert!(cm.sensitivity() > 0.6, "sensitivity = {}", cm.sensitivity());
        assert!(cm.specificity() > 0.6, "specificity = {}", cm.specificity());

        // A full batch fit supersedes the incremental pool, after which the
        // incremental path refuses to (silently) restart from scratch.
        detector.train(&balanced).unwrap();
        assert!(detector.incremental_trainer().is_none());
        assert!(matches!(
            detector.retrain_incremental(&rows, nf, labels),
            Err(CoreError::InvalidState { .. })
        ));
    }

    #[test]
    fn config_accessor() {
        let detector = RealTimeDetector::new(fast_config());
        assert_eq!(detector.config().window_secs, 4.0);
    }

    #[test]
    fn untrained_detector_state_round_trips() {
        let detector = RealTimeDetector::new(fast_config());
        let restored = RealTimeDetector::load_state(&detector.save_state()).unwrap();
        assert_eq!(restored, detector);
        assert!(!restored.is_trained());
    }

    #[test]
    fn batch_trained_detector_state_round_trips_with_statistics() {
        let (record, truth) = record_and_truth(9);
        let mut detector = RealTimeDetector::new(fast_config());
        let training = detector
            .build_training_windows(record.signal(), &truth)
            .unwrap();
        detector
            .train(&detector.balance(&training).unwrap())
            .unwrap();

        let restored = RealTimeDetector::load_state(&detector.save_state()).unwrap();
        // State-identical: config, forest, and the standardization stats the
        // batch path re-applies at prediction time.
        assert_eq!(restored, detector);
        assert_eq!(
            restored.detect(record.signal()).unwrap(),
            detector.detect(record.signal()).unwrap()
        );
    }

    #[test]
    fn incremental_detector_resumes_node_identically_across_a_save() {
        let (record, truth) = record_and_truth(10);
        let config = fast_config();
        let mut detector = RealTimeDetector::new(config);
        let training = detector
            .build_training_windows(record.signal(), &truth)
            .unwrap();
        let balanced = detector.balance(&training).unwrap();
        let nf = balanced.num_features();
        let rows: Vec<f64> = balanced.features().iter().flatten().copied().collect();
        let labels = balanced.labels();
        let cut = balanced.len() / 2;

        // Train half, save, cross the "process boundary", resume, train the
        // rest — against a detector that never stopped.
        detector
            .retrain_incremental(&rows[..cut * nf], nf, &labels[..cut])
            .unwrap();
        let snapshot = detector.save_state();
        detector
            .retrain_incremental(&rows[cut * nf..], nf, &labels[cut..])
            .unwrap();

        let mut resumed = RealTimeDetector::load_state(&snapshot).unwrap();
        resumed
            .retrain_incremental(&rows[cut * nf..], nf, &labels[cut..])
            .unwrap();
        assert_eq!(resumed.flat_forest(), detector.flat_forest());
        assert_eq!(resumed, detector);
        assert_eq!(
            resumed.detect(record.signal()).unwrap(),
            detector.detect(record.signal()).unwrap()
        );
    }

    /// The zero-copy snapshot assembly (nested envelopes written in place,
    /// lengths and checksums back-patched) must emit exactly the bytes of
    /// the copying `nested()` path the format was defined with.
    #[test]
    fn zero_copy_state_snapshot_is_byte_identical_to_the_copying_codec() {
        let (record, truth) = record_and_truth(11);
        let config = fast_config();

        // Incremental model: the O(pool) trainer payload is the one worth
        // not copying.
        let mut detector = RealTimeDetector::new(config);
        let training = detector
            .build_training_windows(record.signal(), &truth)
            .unwrap();
        let balanced = detector.balance(&training).unwrap();
        let nf = balanced.num_features();
        let rows: Vec<f64> = balanced.features().iter().flatten().copied().collect();
        detector
            .retrain_incremental(&rows, nf, balanced.labels())
            .unwrap();
        let mut reference = SnapshotWriter::new();
        reference.f64(config.window_secs);
        reference.f64(config.overlap);
        persist::write_forest_config(&mut reference, &config.forest);
        reference.u64(config.seed);
        reference.usize(config.incremental_block_size);
        reference.bool(config.quality_gate);
        reference.f64(detector.quality_gate().reference_log_std()[0]);
        reference.f64(detector.quality_gate().reference_log_std()[1]);
        reference.f64(detector.quality_gate().calibration_weight());
        reference.u8(MODEL_INCREMENTAL);
        reference.nested(&persist::trainer_to_bytes(
            detector.incremental_trainer().unwrap(),
        ));
        assert_eq!(
            detector.save_state(),
            reference.finish(SnapshotKind::RealTimeDetector)
        );

        // Batch model: statistics + nested forest.
        let mut batch = RealTimeDetector::new(config);
        batch.train(&balanced).unwrap();
        let mut reference = SnapshotWriter::new();
        reference.f64(config.window_secs);
        reference.f64(config.overlap);
        persist::write_forest_config(&mut reference, &config.forest);
        reference.u64(config.seed);
        reference.usize(config.incremental_block_size);
        reference.bool(config.quality_gate);
        reference.f64(batch.quality_gate().reference_log_std()[0]);
        reference.f64(batch.quality_gate().reference_log_std()[1]);
        reference.f64(batch.quality_gate().calibration_weight());
        reference.u8(MODEL_BATCH);
        reference.slice_f64(&batch.feature_means);
        reference.slice_f64(&batch.feature_stds);
        reference.nested(&persist::forest_to_bytes(batch.flat_forest().unwrap()));
        assert_eq!(
            batch.save_state(),
            reference.finish(SnapshotKind::RealTimeDetector)
        );
    }

    #[test]
    fn delta_saves_are_o_batch_and_resume_node_identically() {
        let (record, truth) = record_and_truth(12);
        let config = fast_config();
        let mut detector = RealTimeDetector::new(config);
        let training = detector
            .build_training_windows(record.signal(), &truth)
            .unwrap();
        let balanced = detector.balance(&training).unwrap();
        let nf = balanced.num_features();
        let rows: Vec<f64> = balanced.features().iter().flatten().copied().collect();
        let labels = balanced.labels();
        // Grow most of the pool first so the append is batch-sized relative
        // to it (the steady state the delta save exists for).
        let cut = balanced.len() * 3 / 4;

        // First save: a full base snapshot; nothing new afterwards: clean.
        detector
            .retrain_incremental(&rows[..cut * nf], nf, &labels[..cut])
            .unwrap();
        let base = match detector.save_delta() {
            DeltaSave::Full(bytes) => bytes,
            other => panic!("first delta save must be full, got {other:?}"),
        };
        assert_eq!(detector.save_delta(), DeltaSave::Clean);

        // The per-seizure save is an O(batch) append, not an O(pool) write.
        detector
            .retrain_incremental(&rows[cut * nf..], nf, &labels[cut..])
            .unwrap();
        let journal = match detector.save_delta() {
            DeltaSave::Append(bytes) => bytes,
            other => panic!("steady-state delta save must append, got {other:?}"),
        };
        assert!(
            journal.len() < base.len() / 2,
            "append of {} bytes vs base of {}",
            journal.len(),
            base.len()
        );
        assert_eq!(detector.save_delta(), DeltaSave::Clean);

        // Resume from base + journal: node-identical to the uninterrupted
        // detector, and still learning (the next save appends again).
        let (mut resumed, report) = RealTimeDetector::load_with_journal(&base, &journal).unwrap();
        assert_eq!(report.entries_applied, 1);
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(report.valid_len, journal.len());
        assert_eq!(resumed.flat_forest(), detector.flat_forest());
        assert_eq!(
            resumed.incremental_trainer(),
            detector.incremental_trainer()
        );
        assert_eq!(
            resumed.detect(record.signal()).unwrap(),
            detector.detect(record.signal()).unwrap()
        );
        resumed
            .retrain_incremental(&rows[..cut * nf], nf, &labels[..cut])
            .unwrap();
        // A lenient policy pins the append outcome (under the default, a
        // journal grown past half the base would legitimately compact).
        let lenient = CompactionPolicy {
            max_journal_fraction: 100.0,
            ..CompactionPolicy::default()
        };
        assert!(matches!(
            resumed.save_delta_with(lenient),
            DeltaSave::Append(_)
        ));
    }

    #[test]
    fn torn_journal_tail_is_dropped_on_load() {
        let (record, truth) = record_and_truth(13);
        let mut detector = RealTimeDetector::new(fast_config());
        let training = detector
            .build_training_windows(record.signal(), &truth)
            .unwrap();
        let balanced = detector.balance(&training).unwrap();
        let nf = balanced.num_features();
        let rows: Vec<f64> = balanced.features().iter().flatten().copied().collect();
        let labels = balanced.labels();
        let cut = balanced.len() * 3 / 4;

        detector
            .retrain_incremental(&rows[..cut * nf], nf, &labels[..cut])
            .unwrap();
        let base = match detector.save_delta() {
            DeltaSave::Full(bytes) => bytes,
            other => panic!("{other:?}"),
        };
        let before_append = detector.clone();
        detector
            .retrain_incremental(&rows[cut * nf..], nf, &labels[cut..])
            .unwrap();
        let journal = match detector.save_delta() {
            DeltaSave::Append(bytes) => bytes,
            other => panic!("{other:?}"),
        };

        // Power fails halfway through the append: the torn entry is dropped
        // and the detector is exactly the pre-append one.
        let torn = &journal[..journal.len() / 2];
        let (resumed, report) = RealTimeDetector::load_with_journal(&base, torn).unwrap();
        assert_eq!(report.entries_applied, 0);
        assert_eq!(report.valid_len, 0);
        assert_eq!(report.torn_bytes, torn.len());
        assert_eq!(resumed.flat_forest(), before_append.flat_forest());
        assert_eq!(
            resumed.incremental_trainer(),
            before_append.incremental_trainer()
        );

        // Corruption that is not a tail tear stays a typed error.
        let mut flipped = journal.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x08;
        assert!(matches!(
            RealTimeDetector::load_with_journal(&base, &flipped),
            Err(CoreError::Persist(_))
        ));
        // A journal against the wrong base is rejected, not misapplied.
        let mut other = RealTimeDetector::new(fast_config());
        other
            .retrain_incremental(&rows[..cut * nf], nf, &labels[..cut])
            .unwrap();
        other
            .retrain_incremental(&rows[cut * nf..], nf, &labels[cut..])
            .unwrap();
        let other_base = match other.save_delta() {
            DeltaSave::Full(bytes) => bytes,
            other => panic!("{other:?}"),
        };
        assert!(matches!(
            RealTimeDetector::load_with_journal(&other_base, &journal),
            Err(CoreError::Persist(_))
        ));
    }

    #[test]
    fn journal_compaction_folds_into_a_fresh_base() {
        let (record, truth) = record_and_truth(14);
        let mut detector = RealTimeDetector::new(fast_config());
        let training = detector
            .build_training_windows(record.signal(), &truth)
            .unwrap();
        let balanced = detector.balance(&training).unwrap();
        let nf = balanced.num_features();
        let rows: Vec<f64> = balanced.features().iter().flatten().copied().collect();
        let labels = balanced.labels();
        let cut = balanced.len() / 2;
        detector
            .retrain_incremental(&rows[..cut * nf], nf, &labels[..cut])
            .unwrap();

        // A policy that compacts as soon as any entry lands.
        let eager = CompactionPolicy {
            max_journal_fraction: 0.0,
            min_journal_bytes: 0,
        };
        assert!(matches!(
            detector.save_delta_with(eager),
            DeltaSave::Full(_)
        ));
        detector
            .retrain_incremental(&rows[cut * nf..], nf, &labels[cut..])
            .unwrap();
        let compacted = match detector.save_delta_with(eager) {
            DeltaSave::Full(bytes) => bytes,
            other => panic!("eager policy must compact, got {other:?}"),
        };
        // The fresh base resumes with an empty journal.
        let (resumed, report) = RealTimeDetector::load_with_journal(&compacted, &[]).unwrap();
        assert_eq!(report.entries_applied, 0);
        assert_eq!(resumed.flat_forest(), detector.flat_forest());

        // And a batch retrain invalidates delta state: the next save
        // re-bases instead of appending to a journal of a dead pool.
        detector.train(&balanced).unwrap();
        assert!(matches!(detector.save_delta(), DeltaSave::Full(_)));
    }

    #[test]
    fn corrupt_detector_snapshots_are_rejected() {
        let detector = RealTimeDetector::new(fast_config());
        let mut bytes = detector.save_state();
        assert!(matches!(
            RealTimeDetector::load_state(&bytes[..bytes.len() - 3]),
            Err(CoreError::Persist(_))
        ));
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert!(matches!(
            RealTimeDetector::load_state(&bytes),
            Err(CoreError::Persist(_))
        ));
        assert!(RealTimeDetector::load_state(b"not a snapshot, not even close").is_err());
    }

    /// A detector with most of its pool grown, plus the remaining balanced
    /// rows split into `parts` retrain batches.
    #[allow(clippy::type_complexity)]
    fn detector_and_batches(
        seed: u64,
        parts: usize,
    ) -> (RealTimeDetector, Vec<(Vec<f64>, Vec<bool>)>, usize) {
        let (record, truth) = record_and_truth(seed);
        let mut detector = RealTimeDetector::new(fast_config());
        let training = detector
            .build_training_windows(record.signal(), &truth)
            .unwrap();
        let balanced = detector.balance(&training).unwrap();
        let nf = balanced.num_features();
        let rows: Vec<f64> = balanced.features().iter().flatten().copied().collect();
        let labels = balanced.labels();
        let cut = balanced.len() / 2;
        detector
            .retrain_incremental(&rows[..cut * nf], nf, &labels[..cut])
            .unwrap();
        let per = (balanced.len() - cut).div_ceil(parts).max(1);
        let mut batches = Vec::new();
        let mut at = cut;
        while at < balanced.len() {
            let to = (at + per).min(balanced.len());
            batches.push((rows[at * nf..to * nf].to_vec(), labels[at..to].to_vec()));
            at = to;
        }
        (detector, batches, nf)
    }

    #[test]
    fn store_round_trip_keeps_the_detector_node_identical() {
        let (mut detector, batches, nf) = detector_and_batches(21, 2);
        let base_capacity = detector.save_state().len() * 2;
        let geometry = FlashGeometry::for_base(base_capacity, 64 * 1024);
        let mut store = detector
            .init_store(MemFlash::new(geometry.total_bytes()), geometry)
            .unwrap();
        assert_eq!(store.sequence(), 1);
        assert_eq!(
            detector.save_to_store(&mut store).unwrap(),
            StoreSave::Clean
        );

        // Steady state: each batch costs one O(batch) journal append.
        for (rows, labels) in &batches {
            detector.retrain_incremental(rows, nf, labels).unwrap();
            assert_eq!(
                detector.save_to_store(&mut store).unwrap(),
                StoreSave::Appended
            );
        }
        assert_eq!(store.journal_entries(), batches.len());

        // Power cycle: mount + resume is node-identical.
        let geometry = *store.geometry();
        let (store, report) = FlashStore::mount(store.into_flash(), geometry).unwrap();
        assert_eq!(report.journal_entries, batches.len());
        let (resumed, replay) = RealTimeDetector::resume_from_store(&store).unwrap();
        assert_eq!(replay.entries_applied, batches.len());
        assert_eq!(resumed.flat_forest(), detector.flat_forest());
        assert_eq!(
            resumed.incremental_trainer(),
            detector.incremental_trainer()
        );
        assert_eq!(resumed.save_state(), detector.save_state());
    }

    /// Journal-entry size for one batch, measured on a throwaway clone.
    fn probe_entry_len(
        detector: &RealTimeDetector,
        batch: &(Vec<f64>, Vec<bool>),
        nf: usize,
    ) -> usize {
        let mut probe = detector.clone();
        probe.save_delta();
        probe.retrain_incremental(&batch.0, nf, &batch.1).unwrap();
        match probe.save_delta() {
            DeltaSave::Append(bytes) => bytes.len(),
            other => panic!("probe save must append, got {other:?}"),
        }
    }

    #[test]
    fn store_compacts_into_the_inactive_slot_when_the_journal_fills() {
        let (mut detector, batches, nf) = detector_and_batches(22, 4);
        let base_capacity = detector.save_state().len() * 2;
        // A journal region 2.5 entries wide: the store's capacity-derived
        // policy must fold the state into the inactive slot mid-sequence.
        let entry_len = probe_entry_len(&detector, &batches[0], nf);
        let geometry = FlashGeometry::for_base(base_capacity, entry_len * 5 / 2);
        let mut store = detector
            .init_store(MemFlash::new(geometry.total_bytes()), geometry)
            .unwrap();

        let mut outcomes = Vec::new();
        for (rows, labels) in &batches {
            detector.retrain_incremental(rows, nf, labels).unwrap();
            outcomes.push(detector.save_to_store(&mut store).unwrap());
        }
        assert!(
            outcomes.contains(&StoreSave::Appended) && outcomes.contains(&StoreSave::Rebased),
            "the sequence must exercise both paths, got {outcomes:?}"
        );
        assert!(store.sequence() > 1, "compaction must bump the sequence");
        let (resumed, _) = RealTimeDetector::resume_from_store(&store).unwrap();
        assert_eq!(resumed.save_state(), detector.save_state());
    }

    #[test]
    fn store_crash_at_any_write_byte_recovers_pre_or_post_state() {
        let (mut detector, batches, nf) = detector_and_batches(23, 3);
        let base_capacity = detector.save_state().len() * 2;

        // Fault-free reference pass, sized so the middle batch forces an A/B
        // compaction: record the expected snapshot after every operation.
        let entry_len = probe_entry_len(&detector, &batches[0], nf);
        let geometry = FlashGeometry::for_base(base_capacity, entry_len * 5 / 2);
        let mut store = detector
            .init_store(FaultyFlash::new(geometry.total_bytes()), geometry)
            .unwrap();
        let armed = detector.clone();
        let image = store.flash().image().to_vec();
        let format_bytes = store.flash().bytes_written();
        let mut states = vec![detector.save_state()];
        let mut outcomes = Vec::new();
        for (rows, labels) in &batches {
            detector.retrain_incremental(rows, nf, labels).unwrap();
            outcomes.push(detector.save_to_store(&mut store).unwrap());
            states.push(detector.save_state());
        }
        let total_bytes = store.into_flash().bytes_written() - format_bytes;
        assert!(
            outcomes.contains(&StoreSave::Appended) && outcomes.contains(&StoreSave::Rebased),
            "the sweep must cover both append and compaction, got {outcomes:?}"
        );

        // Sweep a power loss across the stream (strided — the byte-exact
        // exhaustive sweep lives in seizure-ml's crash-injection suite).
        let stride = (total_bytes / 40).max(1) | 1;
        let mut cut = 0;
        while cut <= total_bytes {
            let flash = FaultyFlash::from_image(image.clone()).power_loss_after(cut);
            let (mut live, mut store) = (
                armed.clone(),
                FlashStore::mount(flash, geometry).map(|(s, _)| s).unwrap(),
            );
            let mut died_at = None;
            for (i, (rows, labels)) in batches.iter().enumerate() {
                live.retrain_incremental(rows, nf, labels).unwrap();
                if live.save_to_store(&mut store).is_err() {
                    died_at = Some(i);
                    break;
                }
            }
            let (store, _) = FlashStore::mount(store.into_flash().reboot(), geometry)
                .unwrap_or_else(|e| panic!("cut {cut}: store lost: {e}"));
            let (resumed, _) = RealTimeDetector::resume_from_store(&store)
                .unwrap_or_else(|e| panic!("cut {cut}: resume failed: {e}"));
            let observed = resumed.save_state();
            match died_at {
                Some(i) => assert!(
                    observed == states[i] || observed == states[i + 1],
                    "cut {cut}: crash during save {i} recovered neither the pre-save nor \
                     the committed state"
                ),
                None => assert_eq!(
                    &observed,
                    states.last().unwrap(),
                    "cut {cut}: completed run must resume the final state"
                ),
            }
            cut += stride;
        }
    }

    #[test]
    fn streaming_detector_matches_batch_detect() {
        let (record, truth) = record_and_truth(11);
        let mut detector = RealTimeDetector::new(fast_config());
        assert!(matches!(
            detector.streaming(64.0),
            Err(CoreError::InvalidState { .. })
        ));
        let training = detector
            .build_training_windows(record.signal(), &truth)
            .unwrap();
        detector.train(&training).unwrap();

        let mut ws = FeatureWorkspace::new();
        detector.detect_into(record.signal(), &mut ws).unwrap();
        let batch_alarms = ws.predictions.clone();
        let batch_verdicts = ws.verdicts.clone();

        let fs = record.signal().sampling_frequency();
        let mut streaming = detector.streaming(fs).unwrap();
        assert_eq!(streaming.window_samples(), 256);
        assert_eq!(streaming.step_samples(), 64);
        assert!(streaming.state_bytes() > 0);
        let mut alarms = Vec::new();
        let mut verdicts = Vec::new();
        for (&a, &b) in record
            .signal()
            .f7t3()
            .iter()
            .zip(record.signal().f8t4().iter())
        {
            if let Some(det) = streaming.push(a, b).unwrap() {
                assert_eq!(det.window_index, alarms.len());
                alarms.push(det.alarm);
                verdicts.push(det.verdict);
            }
        }
        // The gate is uncalibrated, so no AGC ran in the batch path and the
        // streaming sweep must agree window for window.
        assert_eq!(alarms, batch_alarms);
        assert_eq!(verdicts, batch_verdicts);

        // A reset detector replays the same record identically.
        streaming.reset();
        assert_eq!(streaming.next_window_index(), 0);
        let mut replay = Vec::new();
        for (&a, &b) in record
            .signal()
            .f7t3()
            .iter()
            .zip(record.signal().f8t4().iter())
        {
            if let Some(det) = streaming.push(a, b).unwrap() {
                replay.push(det.alarm);
            }
        }
        assert_eq!(replay, alarms);
    }
}
