//! The deviation metric δ and its normalized form δ_norm (paper §V-C).
//!
//! Given the ground-truth seizure interval `[y_start, y_end]` and the detected
//! interval `[y'_start, y'_end]` (both in seconds),
//!
//! ```text
//! δ      = (|y_start − y'_start| + |y_end − y'_end|) / 2
//! δ_norm = 1 − (|y_start − y'_start| + |y_end − y'_end|) / (2 N)
//! N      = max(L − (y_start + y_end)/2, (y_start + y_end)/2)
//! ```
//!
//! where `L` is the length of the signal in seconds. `δ` is a non-normalized
//! distance in seconds; `δ_norm` lies in `[0, 1]` with 1 meaning a perfect
//! label.

use crate::error::CoreError;

fn validate_interval(name: &'static str, interval: (f64, f64)) -> Result<(), CoreError> {
    let (start, end) = interval;
    if start.is_nan() || end.is_nan() || start < 0.0 || end < start {
        return Err(CoreError::InvalidParameter {
            name,
            reason: format!("invalid interval [{start}, {end}]"),
        });
    }
    Ok(())
}

/// Deviation `δ` in seconds between a ground-truth and a detected seizure
/// interval (each given as `(start, end)` in seconds).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if either interval is malformed
/// (negative, reversed, or NaN).
///
/// # Example
///
/// ```
/// use seizure_core::metric::deviation_seconds;
///
/// # fn main() -> Result<(), seizure_core::CoreError> {
/// // Detected 10 s early on both edges: δ = 10 s.
/// let delta = deviation_seconds((100.0, 160.0), (90.0, 150.0))?;
/// assert!((delta - 10.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn deviation_seconds(ground_truth: (f64, f64), detected: (f64, f64)) -> Result<f64, CoreError> {
    validate_interval("ground_truth", ground_truth)?;
    validate_interval("detected", detected)?;
    Ok(((ground_truth.0 - detected.0).abs() + (ground_truth.1 - detected.1).abs()) / 2.0)
}

/// Normalized deviation `δ_norm ∈ [0, 1]` for a signal of `signal_length_secs`
/// seconds (1 = perfect label).
///
/// The result is clamped to `[0, 1]` to absorb rounding at the boundaries.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if either interval is malformed or
/// the signal length is not positive.
pub fn normalized_deviation(
    ground_truth: (f64, f64),
    detected: (f64, f64),
    signal_length_secs: f64,
) -> Result<f64, CoreError> {
    validate_interval("ground_truth", ground_truth)?;
    validate_interval("detected", detected)?;
    if signal_length_secs <= 0.0 || signal_length_secs.is_nan() {
        return Err(CoreError::InvalidParameter {
            name: "signal_length_secs",
            reason: format!("signal length must be positive, got {signal_length_secs}"),
        });
    }
    let centre = 0.5 * (ground_truth.0 + ground_truth.1);
    let n = (signal_length_secs - centre).max(centre);
    if n <= 0.0 {
        return Err(CoreError::InvalidParameter {
            name: "signal_length_secs",
            reason: "the ground-truth seizure lies outside the signal".to_string(),
        });
    }
    let total = (ground_truth.0 - detected.0).abs() + (ground_truth.1 - detected.1).abs();
    Ok((1.0 - total / (2.0 * n)).clamp(0.0, 1.0))
}

/// Summary of the label quality over a collection of evaluation samples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeviationSummary {
    deltas: Vec<f64>,
    normalized: Vec<f64>,
}

impl DeviationSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one evaluation sample.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`deviation_seconds`] and
    /// [`normalized_deviation`].
    pub fn record(
        &mut self,
        ground_truth: (f64, f64),
        detected: (f64, f64),
        signal_length_secs: f64,
    ) -> Result<(), CoreError> {
        self.deltas.push(deviation_seconds(ground_truth, detected)?);
        self.normalized.push(normalized_deviation(
            ground_truth,
            detected,
            signal_length_secs,
        )?);
        Ok(())
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// The recorded `δ` values in seconds.
    pub fn deltas(&self) -> &[f64] {
        &self.deltas
    }

    /// The recorded `δ_norm` values.
    pub fn normalized(&self) -> &[f64] {
        &self.normalized
    }

    /// Arithmetic mean of `δ` in seconds (the per-seizure aggregation used by
    /// the paper's Table II).
    pub fn mean_delta(&self) -> Option<f64> {
        if self.deltas.is_empty() {
            None
        } else {
            Some(self.deltas.iter().sum::<f64>() / self.deltas.len() as f64)
        }
    }

    /// Median of `δ` in seconds.
    pub fn median_delta(&self) -> Option<f64> {
        median(&self.deltas)
    }

    /// Geometric mean of `δ_norm` (the paper's per-seizure aggregation of the
    /// normalized metric, "the only correct average of normalized values").
    pub fn geometric_mean_normalized(&self) -> Option<f64> {
        if self.normalized.is_empty() {
            return None;
        }
        let log_sum: f64 = self.normalized.iter().map(|v| v.max(1e-12).ln()).sum();
        Some((log_sum / self.normalized.len() as f64).exp())
    }

    /// Fraction of samples whose `δ` is at most `threshold_secs` (used for the
    /// "73.3 % of seizures within 15 s" style statements of §VI-A).
    pub fn fraction_within(&self, threshold_secs: f64) -> Option<f64> {
        if self.deltas.is_empty() {
            return None;
        }
        let within = self.deltas.iter().filter(|&&d| d <= threshold_secs).count();
        Some(within as f64 / self.deltas.len() as f64)
    }
}

/// Median of a slice (`None` when empty). NaN-safe: `total_cmp` gives a
/// deterministic total order, where the former `Equal` fallback left the
/// slice arbitrarily mis-sorted around a NaN deviation. A NaN still counts
/// as a (worst-ranked) element — it shifts which rank the median reads —
/// but the result is now deterministic and the finite values stay properly
/// ordered.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    Some(if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_detection_has_zero_delta_and_unit_delta_norm() {
        let gt = (100.0, 160.0);
        assert_eq!(deviation_seconds(gt, gt).unwrap(), 0.0);
        assert_eq!(normalized_deviation(gt, gt, 1800.0).unwrap(), 1.0);
    }

    #[test]
    fn known_deviation_values() {
        let gt = (100.0, 160.0);
        let det = (110.0, 150.0);
        assert!((deviation_seconds(gt, det).unwrap() - 10.0).abs() < 1e-12);
        // Asymmetric errors average.
        let det = (90.0, 160.0);
        assert!((deviation_seconds(gt, det).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_deviation_uses_worst_case_normalizer() {
        // Seizure centred at 130 s in a 1800 s signal: N = 1800 - 130 = 1670.
        let gt = (100.0, 160.0);
        let det = (110.0, 150.0);
        let expected = 1.0 - 20.0 / (2.0 * 1670.0);
        assert!((normalized_deviation(gt, det, 1800.0).unwrap() - expected).abs() < 1e-12);

        // Seizure near the end: N = centre instead.
        let gt = (1700.0, 1760.0);
        let centre: f64 = 1730.0;
        let n = centre.max(1800.0 - centre);
        let det = (1600.0, 1700.0);
        let expected = 1.0 - (100.0 + 60.0) / (2.0 * n);
        assert!((normalized_deviation(gt, det, 1800.0).unwrap() - expected).abs() < 1e-12);
    }

    /// Regression for the NaN-unsafe median sort: a NaN deviation must sort
    /// to the worst end deterministically instead of scrambling the order of
    /// the finite deltas (and it must never panic).
    #[test]
    fn median_tolerates_nan_values() {
        assert_eq!(median(&[2.0, f64::NAN, 1.0]), Some(2.0));
        // [1, 3, 5, NaN]: the even-length median averages the finite middle.
        assert_eq!(median(&[5.0, 1.0, f64::NAN, 3.0]), Some(4.0));
        assert!(median(&[f64::NAN]).unwrap().is_nan());
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn normalized_deviation_is_clamped_to_unit_interval() {
        let gt = (10.0, 20.0);
        let det = (5000.0, 6000.0);
        let v = normalized_deviation(gt, det, 100.0).unwrap();
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(deviation_seconds((10.0, 5.0), (0.0, 1.0)).is_err());
        assert!(deviation_seconds((-1.0, 5.0), (0.0, 1.0)).is_err());
        assert!(deviation_seconds((0.0, 5.0), (f64::NAN, 1.0)).is_err());
        assert!(normalized_deviation((0.0, 5.0), (0.0, 5.0), 0.0).is_err());
        assert!(normalized_deviation((0.0, 5.0), (0.0, 5.0), -10.0).is_err());
    }

    #[test]
    fn summary_statistics() {
        let mut summary = DeviationSummary::new();
        assert!(summary.is_empty());
        assert_eq!(summary.mean_delta(), None);
        assert_eq!(summary.median_delta(), None);
        assert_eq!(summary.geometric_mean_normalized(), None);
        assert_eq!(summary.fraction_within(15.0), None);

        summary
            .record((100.0, 160.0), (100.0, 160.0), 1800.0)
            .unwrap();
        summary
            .record((100.0, 160.0), (110.0, 150.0), 1800.0)
            .unwrap();
        summary
            .record((100.0, 160.0), (140.0, 200.0), 1800.0)
            .unwrap();
        assert_eq!(summary.len(), 3);
        assert!((summary.mean_delta().unwrap() - 50.0 / 3.0).abs() < 1e-9);
        assert_eq!(summary.median_delta().unwrap(), 10.0);
        let gm = summary.geometric_mean_normalized().unwrap();
        assert!(gm > 0.9 && gm < 1.0);
        assert!((summary.fraction_within(15.0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(summary.deltas().len(), 3);
        assert_eq!(summary.normalized().len(), 3);
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[1.0, 9.0, 4.0]), Some(4.0));
        assert_eq!(median(&[4.0, 1.0, 9.0, 5.0]), Some(4.5));
    }
}
