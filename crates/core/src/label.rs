//! Seizure labels produced by the a-posteriori detector.

use crate::error::CoreError;

/// A seizure label on the time axis of a recording, expressed in seconds.
///
/// Labels are produced by the a-posteriori detector ("the seizure is labeled
/// as the points in the range `[y, y + W]`") and consumed when building the
/// training set of the real-time classifier.
///
/// # Example
///
/// ```
/// use seizure_core::SeizureLabel;
///
/// # fn main() -> Result<(), seizure_core::CoreError> {
/// let label = SeizureLabel::new(120.0, 180.0)?;
/// assert_eq!(label.duration_secs(), 60.0);
/// assert!(label.contains(150.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeizureLabel {
    onset_secs: f64,
    offset_secs: f64,
}

impl SeizureLabel {
    /// Creates a label from onset and offset times in seconds.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the interval is empty,
    /// negative or contains NaN.
    pub fn new(onset_secs: f64, offset_secs: f64) -> Result<Self, CoreError> {
        if onset_secs.is_nan()
            || offset_secs.is_nan()
            || onset_secs < 0.0
            || offset_secs <= onset_secs
        {
            return Err(CoreError::InvalidParameter {
                name: "label",
                reason: format!("invalid label interval [{onset_secs}, {offset_secs}]"),
            });
        }
        Ok(Self {
            onset_secs,
            offset_secs,
        })
    }

    /// Label onset in seconds.
    pub fn onset_secs(&self) -> f64 {
        self.onset_secs
    }

    /// Label offset (end) in seconds.
    pub fn offset_secs(&self) -> f64 {
        self.offset_secs
    }

    /// Label duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.offset_secs - self.onset_secs
    }

    /// The label as a `(start, end)` tuple, the form the metric functions take.
    pub fn as_interval(&self) -> (f64, f64) {
        (self.onset_secs, self.offset_secs)
    }

    /// Returns `true` if time `t` (seconds) falls inside the label.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.onset_secs && t <= self.offset_secs
    }

    /// Length in seconds of the overlap between the label and `[start, end]`.
    pub fn overlap_with(&self, start: f64, end: f64) -> f64 {
        let lo = self.onset_secs.max(start);
        let hi = self.offset_secs.min(end);
        (hi - lo).max(0.0)
    }
}

/// Converts a label into per-window boolean training labels: window `i`
/// (starting at `i * step_secs` and spanning `window_secs`) is marked as
/// seizure when at least half of it overlaps the label.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] if `window_secs` or `step_secs` is
/// not positive.
pub fn window_labels(
    label: &SeizureLabel,
    num_windows: usize,
    window_secs: f64,
    step_secs: f64,
) -> Result<Vec<bool>, CoreError> {
    if window_secs <= 0.0 || step_secs <= 0.0 || window_secs.is_nan() || step_secs.is_nan() {
        return Err(CoreError::InvalidParameter {
            name: "window_secs",
            reason: "window and step durations must be positive".to_string(),
        });
    }
    Ok((0..num_windows)
        .map(|i| {
            let start = i as f64 * step_secs;
            let end = start + window_secs;
            label.overlap_with(start, end) >= window_secs / 2.0
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(SeizureLabel::new(10.0, 5.0).is_err());
        assert!(SeizureLabel::new(-1.0, 5.0).is_err());
        assert!(SeizureLabel::new(5.0, 5.0).is_err());
        assert!(SeizureLabel::new(f64::NAN, 5.0).is_err());
        assert!(SeizureLabel::new(0.0, 30.0).is_ok());
    }

    #[test]
    fn accessors_and_overlap() {
        let label = SeizureLabel::new(100.0, 160.0).unwrap();
        assert_eq!(label.duration_secs(), 60.0);
        assert_eq!(label.as_interval(), (100.0, 160.0));
        assert!(label.contains(100.0) && label.contains(160.0));
        assert!(!label.contains(99.0));
        assert_eq!(label.overlap_with(150.0, 200.0), 10.0);
        assert_eq!(label.overlap_with(0.0, 50.0), 0.0);
    }

    #[test]
    fn window_labels_mark_overlapping_windows() {
        let label = SeizureLabel::new(10.0, 20.0).unwrap();
        // 4-second windows stepping by 1 s, 30 windows.
        let labels = window_labels(&label, 30, 4.0, 1.0).unwrap();
        assert_eq!(labels.len(), 30);
        // A window starting at 12 s ([12, 16]) lies fully inside the label.
        assert!(labels[12]);
        // A window starting at 0 s does not touch the label.
        assert!(!labels[0]);
        // A window starting at 19 s ([19, 23]) overlaps by 1 s < 2 s -> not seizure.
        assert!(!labels[19]);
        // A window starting at 8 s ([8, 12]) overlaps by 2 s >= 2 s -> seizure.
        assert!(labels[8]);
    }

    #[test]
    fn window_labels_validation() {
        let label = SeizureLabel::new(10.0, 20.0).unwrap();
        assert!(window_labels(&label, 10, 0.0, 1.0).is_err());
        assert!(window_labels(&label, 10, 4.0, -1.0).is_err());
    }

    #[test]
    fn window_labels_count_matches_requested_windows() {
        let label = SeizureLabel::new(1.0, 2.0).unwrap();
        assert_eq!(window_labels(&label, 0, 4.0, 1.0).unwrap().len(), 0);
        assert_eq!(window_labels(&label, 7, 4.0, 1.0).unwrap().len(), 7);
    }
}
