//! # seizure-core
//!
//! The paper's primary contribution: a self-learning methodology for epileptic
//! seizure detection with minimally-supervised labeling at the edge device
//! (*Pascual, Aminifar, Atienza — DATE 2019*).
//!
//! The crate is organized around the three stages of the methodology:
//!
//! 1. **A-posteriori seizure labeling** ([`algorithm`]): after the patient
//!    confirms that the last hour of EEG contains a missed seizure, Algorithm 1
//!    scans the feature matrix with a sliding window of length `W` (the
//!    patient's average seizure duration) and labels the window that is
//!    farthest — in normalized feature space — from the rest of the signal.
//! 2. **Label quality evaluation** ([`metric`]): the deviation metric `δ`
//!    (seconds) and its normalized form `δ_norm` compare the produced label
//!    against the ground truth.
//! 3. **Supervised real-time detection and the self-learning loop**
//!    ([`realtime`], [`pipeline`]): the produced labels train a random-forest
//!    real-time detector; with every missed seizure the training set grows and
//!    the detector becomes more robust.
//!
//! # Example
//!
//! Label a synthetic record with the a-posteriori algorithm and measure how
//! far the label is from the ground truth:
//!
//! ```
//! use seizure_core::labeler::{PosterioriLabeler, LabelerConfig};
//! use seizure_core::metric::deviation_seconds;
//! use seizure_data::cohort::Cohort;
//! use seizure_data::sampler::SampleConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cohort = Cohort::chb_mit_like(42);
//! // Short, low-rate record so the example runs quickly.
//! let config = SampleConfig::new(240.0, 300.0, 64.0)?;
//! let record = cohort.sample_record(0, 0, &config, 1)?;
//!
//! let labeler = PosterioriLabeler::new(LabelerConfig::default());
//! let w = cohort.average_seizure_duration(0)?;
//! let label = labeler.label_record(&record, w)?;
//! let delta = deviation_seconds(
//!     (record.annotation().onset(), record.annotation().offset()),
//!     (label.onset_secs(), label.offset_secs()),
//! )?;
//! assert!(delta.is_finite());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alarm;
pub mod algorithm;
pub mod error;
pub mod label;
pub mod labeler;
pub mod metric;
pub mod pipeline;
pub mod realtime;
pub mod workspace;

pub use alarm::{alarms_from_windows, evaluate_events, Alarm, AlarmConfig, EventReport};
pub use algorithm::{posteriori_detect, Detection, DetectorConfig, Implementation};
pub use error::CoreError;
pub use label::SeizureLabel;
pub use labeler::{LabelerConfig, PosterioriLabeler};
pub use metric::{deviation_seconds, normalized_deviation};
pub use pipeline::{SelfLearningPipeline, SelfLearningReport};
pub use realtime::{
    RealTimeDetector, RealTimeDetectorConfig, StreamingDetection, StreamingDetector,
};
pub use workspace::FeatureWorkspace;
