//! High-level a-posteriori labeler: raw two-channel EEG in, seizure label out.
//!
//! [`PosterioriLabeler`] wires together the paper's processing pipeline for the
//! edge device: feature extraction over 4-second windows with 75 % overlap
//! (§III-A), followed by Algorithm 1 over the resulting feature matrix with the
//! patient's average seizure duration as the window length, and finally the
//! conversion of the detected window index back to a time interval.

use crate::algorithm::{posteriori_detect, Detection, DetectorConfig};
use crate::error::CoreError;
use crate::label::SeizureLabel;
use crate::workspace::FeatureWorkspace;
use seizure_data::sampler::EegRecord;
use seizure_data::signal::EegSignal;
use seizure_features::extractor::{FeatureExtractor, PaperFeatureSet, SlidingWindowConfig};
use seizure_features::FeatureMatrix;

/// Configuration of the a-posteriori labeler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelerConfig {
    /// Feature-extraction window length in seconds (paper: 4 s).
    pub window_secs: f64,
    /// Feature-extraction window overlap in `[0, 1)` (paper: 0.75).
    pub overlap: f64,
    /// Configuration of Algorithm 1.
    pub detector: DetectorConfig,
}

impl Default for LabelerConfig {
    fn default() -> Self {
        Self {
            window_secs: 4.0,
            overlap: 0.75,
            detector: DetectorConfig::default(),
        }
    }
}

/// The a-posteriori minimally-supervised seizure labeler.
///
/// See the crate-level documentation for a complete example.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PosterioriLabeler {
    config: LabelerConfig,
}

impl PosterioriLabeler {
    /// Creates a labeler with the given configuration.
    pub fn new(config: LabelerConfig) -> Self {
        Self { config }
    }

    /// The labeler's configuration.
    pub fn config(&self) -> &LabelerConfig {
        &self.config
    }

    /// Extracts the paper's ten-feature matrix from a two-channel signal
    /// through the parallel batch engine.
    ///
    /// The batch engine's fused scratch kernels agree with the seed
    /// `extract_matrix` path to ~1e-9 relative, not bitwise (same contract
    /// as the real-time detector's batch path since the inference engine
    /// landed), so labels on pathologically near-tie records may differ
    /// from pre-batch-engine runs in the last ulps of the score.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures (mismatched channels, too-short
    /// signal, invalid configuration).
    pub fn extract_features(&self, signal: &EegSignal) -> Result<FeatureMatrix, CoreError> {
        let mut ws = FeatureWorkspace::new();
        self.extract_features_with(signal, &mut ws)?;
        Ok(ws.matrix)
    }

    /// Multi-record twin of [`PosterioriLabeler::extract_features`]: refills
    /// the workspace's matrix in place and reuses its pooled scratches across
    /// records, per the labeling experiments' batch path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PosterioriLabeler::extract_features`].
    pub fn extract_features_with(
        &self,
        signal: &EegSignal,
        workspace: &mut FeatureWorkspace,
    ) -> Result<(), CoreError> {
        let fs = signal.sampling_frequency();
        let config = SlidingWindowConfig::new(fs, self.config.window_secs, self.config.overlap)?;
        let extractor = PaperFeatureSet::new(fs)?;
        extractor.extract_batch_into(
            signal.f7t3(),
            signal.f8t4(),
            &config,
            &workspace.pool,
            &mut workspace.matrix,
        )?;
        Ok(())
    }

    /// Labels the single seizure contained in `signal`, given the patient's
    /// average seizure duration in seconds, and returns both the label and the
    /// raw detection (distance profile).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the average seizure duration
    /// is not positive and the errors of [`posteriori_detect`] otherwise.
    pub fn label_signal_with_detection(
        &self,
        signal: &EegSignal,
        average_seizure_secs: f64,
    ) -> Result<(SeizureLabel, Detection), CoreError> {
        let mut ws = FeatureWorkspace::new();
        self.label_signal_with_detection_using(signal, average_seizure_secs, &mut ws)
    }

    /// Workspace-reusing twin of
    /// [`PosterioriLabeler::label_signal_with_detection`], for callers that
    /// label many records in a row (the labeling experiments).
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`PosterioriLabeler::label_signal_with_detection`].
    pub fn label_signal_with_detection_using(
        &self,
        signal: &EegSignal,
        average_seizure_secs: f64,
        workspace: &mut FeatureWorkspace,
    ) -> Result<(SeizureLabel, Detection), CoreError> {
        if average_seizure_secs <= 0.0 || average_seizure_secs.is_nan() {
            return Err(CoreError::InvalidParameter {
                name: "average_seizure_secs",
                reason: format!("must be positive, got {average_seizure_secs}"),
            });
        }
        let fs = signal.sampling_frequency();
        let window = SlidingWindowConfig::new(fs, self.config.window_secs, self.config.overlap)?;
        self.extract_features_with(signal, workspace)?;

        // The seizure window length expressed in feature-matrix rows.
        let step_secs = window.step_seconds();
        let w_rows = ((average_seizure_secs / step_secs).round() as usize).max(1);
        let detection = posteriori_detect(workspace.matrix(), w_rows, &self.config.detector)?;

        let onset = window.window_start_seconds(detection.window_index);
        let offset = (onset + w_rows as f64 * step_secs).min(signal.duration_secs());
        let label = SeizureLabel::new(onset, offset)?;
        Ok((label, detection))
    }

    /// Labels the single seizure contained in `signal`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PosterioriLabeler::label_signal_with_detection`].
    pub fn label_signal(
        &self,
        signal: &EegSignal,
        average_seizure_secs: f64,
    ) -> Result<SeizureLabel, CoreError> {
        Ok(self
            .label_signal_with_detection(signal, average_seizure_secs)?
            .0)
    }

    /// Labels an evaluation record (convenience wrapper around
    /// [`PosterioriLabeler::label_signal`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PosterioriLabeler::label_signal`].
    pub fn label_record(
        &self,
        record: &EegRecord,
        average_seizure_secs: f64,
    ) -> Result<SeizureLabel, CoreError> {
        self.label_signal(record.signal(), average_seizure_secs)
    }

    /// Workspace-reusing twin of [`PosterioriLabeler::label_record`] for
    /// labeling whole cohorts of records with one extraction workspace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PosterioriLabeler::label_signal`].
    pub fn label_record_with(
        &self,
        record: &EegRecord,
        average_seizure_secs: f64,
        workspace: &mut FeatureWorkspace,
    ) -> Result<SeizureLabel, CoreError> {
        Ok(self
            .label_signal_with_detection_using(record.signal(), average_seizure_secs, workspace)?
            .0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::deviation_seconds;
    use seizure_data::cohort::Cohort;
    use seizure_data::sampler::SampleConfig;

    fn test_record(seed: u64) -> (EegRecord, f64) {
        let cohort = Cohort::chb_mit_like(9);
        let config = SampleConfig::new(200.0, 260.0, 64.0).unwrap();
        let record = cohort.sample_record(7, 0, &config, seed).unwrap(); // patient 8: clean
        let w = cohort.average_seizure_duration(7).unwrap();
        (record, w)
    }

    #[test]
    fn labels_a_clean_record_close_to_the_ground_truth() {
        let (record, w) = test_record(1);
        let labeler = PosterioriLabeler::new(LabelerConfig::default());
        let label = labeler.label_record(&record, w).unwrap();
        let delta = deviation_seconds(
            (record.annotation().onset(), record.annotation().offset()),
            label.as_interval(),
        )
        .unwrap();
        // The synthetic clean patient should be labeled within half a minute.
        assert!(delta < 30.0, "delta = {delta}");
    }

    #[test]
    fn detection_exposes_distance_profile() {
        let (record, w) = test_record(2);
        let labeler = PosterioriLabeler::new(LabelerConfig::default());
        let (label, detection) = labeler
            .label_signal_with_detection(record.signal(), w)
            .unwrap();
        assert!(!detection.distances.is_empty());
        assert!(detection.peak_distance() > 0.0);
        assert!(label.duration_secs() > 0.0);
        assert!(label.offset_secs() <= record.signal().duration_secs() + 1e-9);
    }

    #[test]
    fn invalid_average_duration_is_rejected() {
        let (record, _) = test_record(3);
        let labeler = PosterioriLabeler::new(LabelerConfig::default());
        assert!(labeler.label_record(&record, 0.0).is_err());
        assert!(labeler.label_record(&record, -5.0).is_err());
        assert!(labeler.label_record(&record, f64::NAN).is_err());
    }

    #[test]
    fn too_short_signal_is_rejected() {
        let labeler = PosterioriLabeler::new(LabelerConfig::default());
        let signal = EegSignal::new(vec![0.0; 64], vec![0.0; 64], 64.0).unwrap();
        assert!(labeler.label_signal(&signal, 30.0).is_err());
    }

    #[test]
    fn extract_features_produces_ten_columns() {
        let (record, _) = test_record(4);
        let labeler = PosterioriLabeler::new(LabelerConfig::default());
        let features = labeler.extract_features(record.signal()).unwrap();
        assert_eq!(features.num_features(), 10);
        assert!(features.num_windows() > 100);
    }

    #[test]
    fn custom_config_is_respected() {
        let config = LabelerConfig {
            window_secs: 2.0,
            overlap: 0.5,
            ..LabelerConfig::default()
        };
        let labeler = PosterioriLabeler::new(config);
        assert_eq!(labeler.config().window_secs, 2.0);
        let (record, w) = test_record(5);
        let label = labeler.label_record(&record, w).unwrap();
        assert!(label.duration_secs() > 0.0);
    }
}
