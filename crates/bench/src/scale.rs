//! Experiment scale presets.

use seizure_data::sampler::SampleConfig;

/// How large an experiment run should be.
///
/// * `Quick` — minutes-scale smoke run: 10–15 minute records at 128 Hz, a
///   few samples per seizure. The *shape* of the paper's results (who wins,
///   rough factors, which patients are hard) is preserved.
/// * `Medium` — tens of minutes: 15–30 minute records at 128 Hz.
/// * `Paper` — the paper's §VI-A protocol: 30–60 minute records at 256 Hz and
///   100 samples per seizure (hours of compute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExperimentScale {
    /// Fast smoke-test scale (default).
    #[default]
    Quick,
    /// Intermediate scale.
    Medium,
    /// The paper's full-scale protocol.
    Paper,
}

impl ExperimentScale {
    /// Parses the scale from command-line arguments (`--scale quick|medium|paper`).
    /// Unknown values fall back to `Quick`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        for pair in args.windows(2) {
            if pair[0] == "--scale" {
                return Self::parse(&pair[1]);
            }
        }
        Self::Quick
    }

    /// Parses a scale name (case-insensitive); unknown names map to `Quick`.
    pub fn parse(name: &str) -> Self {
        match name.to_ascii_lowercase().as_str() {
            "paper" | "full" => ExperimentScale::Paper,
            "medium" => ExperimentScale::Medium,
            _ => ExperimentScale::Quick,
        }
    }

    /// The record-sampling configuration for this scale.
    pub fn sample_config(&self) -> SampleConfig {
        match self {
            ExperimentScale::Quick => SampleConfig::new(600.0, 900.0, 128.0),
            ExperimentScale::Medium => SampleConfig::new(900.0, 1800.0, 128.0),
            ExperimentScale::Paper => SampleConfig::paper_default(),
        }
        .expect("preset sample configurations are valid")
    }

    /// Number of random samples generated per seizure for the labeling
    /// experiment (the paper uses 100).
    pub fn samples_per_seizure(&self) -> usize {
        match self {
            ExperimentScale::Quick => 3,
            ExperimentScale::Medium => 10,
            ExperimentScale::Paper => 100,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentScale::Quick => "quick",
            ExperimentScale::Medium => "medium",
            ExperimentScale::Paper => "paper",
        }
    }
}

impl std::fmt::Display for ExperimentScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names() {
        assert_eq!(ExperimentScale::parse("paper"), ExperimentScale::Paper);
        assert_eq!(ExperimentScale::parse("FULL"), ExperimentScale::Paper);
        assert_eq!(ExperimentScale::parse("medium"), ExperimentScale::Medium);
        assert_eq!(ExperimentScale::parse("quick"), ExperimentScale::Quick);
        assert_eq!(ExperimentScale::parse("garbage"), ExperimentScale::Quick);
        assert_eq!(ExperimentScale::default(), ExperimentScale::Quick);
    }

    #[test]
    fn presets_are_ordered_by_cost() {
        let quick = ExperimentScale::Quick;
        let medium = ExperimentScale::Medium;
        let paper = ExperimentScale::Paper;
        assert!(quick.samples_per_seizure() < medium.samples_per_seizure());
        assert!(medium.samples_per_seizure() < paper.samples_per_seizure());
        assert!(
            quick.sample_config().max_duration_secs() <= medium.sample_config().max_duration_secs()
        );
        assert_eq!(paper.sample_config().sampling_frequency(), 256.0);
        assert_eq!(paper.samples_per_seizure(), 100);
    }

    #[test]
    fn display_names() {
        assert_eq!(ExperimentScale::Quick.to_string(), "quick");
        assert_eq!(ExperimentScale::Paper.to_string(), "paper");
    }
}
