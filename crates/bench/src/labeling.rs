//! The labeling-quality experiment behind the paper's headline numbers,
//! Table I (per-patient δ / δ_norm) and Table II (per-seizure δ).
//!
//! Protocol (§VI-A): for every seizure in the cohort, generate several records
//! of random duration containing that seizure, label each record with
//! Algorithm 1 and measure δ / δ_norm against the ground truth. Per seizure,
//! the mean δ and the geometric mean of δ_norm over its samples are kept; per
//! patient, the median across the patient's seizures; overall, the median
//! across all seizures.

use crate::scale::ExperimentScale;
use seizure_core::labeler::{LabelerConfig, PosterioriLabeler};
use seizure_core::metric::{median, DeviationSummary};
use seizure_core::workspace::FeatureWorkspace;
use seizure_core::CoreError;
use seizure_data::cohort::Cohort;

/// Per-seizure result (one row cell of Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct SeizureResult {
    /// 1-based patient identifier.
    pub patient_id: usize,
    /// 0-based seizure index within the patient.
    pub seizure_index: usize,
    /// Mean δ in seconds over the seizure's samples.
    pub mean_delta: f64,
    /// Geometric mean of δ_norm over the seizure's samples.
    pub gmean_norm: f64,
}

/// Per-patient result (one column of Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct PatientResult {
    /// 1-based patient identifier.
    pub patient_id: usize,
    /// Median (across the patient's seizures) of the per-seizure mean δ, in
    /// seconds.
    pub median_delta: f64,
    /// Median (across the patient's seizures) of the per-seizure geometric
    /// mean of δ_norm, as a percentage.
    pub median_norm_percent: f64,
}

/// Complete result of the labeling experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelingResults {
    /// Scale the experiment was run at.
    pub scale: ExperimentScale,
    /// Per-seizure results, in cohort order (Table II).
    pub per_seizure: Vec<SeizureResult>,
    /// Per-patient results (Table I).
    pub per_patient: Vec<PatientResult>,
    /// Overall median of the per-seizure mean δ, in seconds (paper: 10.1 s).
    pub overall_median_delta: f64,
    /// Overall median of the per-seizure geometric-mean δ_norm
    /// (paper: 0.9935).
    pub overall_median_norm: f64,
    /// Fraction of seizures whose mean δ is within 15 s (paper: 73.3 %).
    pub fraction_within_15s: f64,
    /// Fraction within 30 s (paper: 86.7 %).
    pub fraction_within_30s: f64,
    /// Fraction within 60 s (paper: 93.3 %).
    pub fraction_within_60s: f64,
}

/// Runs the labeling experiment at the given scale with the default cohort and
/// labeler configuration.
///
/// # Errors
///
/// Propagates data-generation and labeling failures.
pub fn run_labeling_experiment(scale: ExperimentScale) -> Result<LabelingResults, CoreError> {
    run_labeling_experiment_with(scale, 42, &LabelerConfig::default())
}

/// Runs the labeling experiment with an explicit cohort seed and labeler
/// configuration (used by the feature-ablation study).
///
/// # Errors
///
/// Propagates data-generation and labeling failures.
pub fn run_labeling_experiment_with(
    scale: ExperimentScale,
    cohort_seed: u64,
    labeler_config: &LabelerConfig,
) -> Result<LabelingResults, CoreError> {
    let cohort = Cohort::chb_mit_like(cohort_seed);
    let sample_config = scale.sample_config();
    let samples = scale.samples_per_seizure();
    let labeler = PosterioriLabeler::new(*labeler_config);
    // One extraction workspace serves every record of the experiment: the
    // feature matrix buffer and the per-worker FFT/wavelet scratches are
    // grown once and reused across the whole cohort.
    let mut workspace = FeatureWorkspace::new();

    let mut per_seizure = Vec::with_capacity(cohort.total_seizures());
    for patient_idx in 0..cohort.patients().len() {
        let w = cohort.average_seizure_duration(patient_idx)?;
        for seizure_idx in 0..cohort.seizures_of(patient_idx)?.len() {
            let mut summary = DeviationSummary::new();
            for sample in 0..samples {
                let record = cohort.sample_record(
                    patient_idx,
                    seizure_idx,
                    &sample_config,
                    sample as u64,
                )?;
                let label = labeler.label_record_with(&record, w, &mut workspace)?;
                summary.record(
                    (record.annotation().onset(), record.annotation().offset()),
                    label.as_interval(),
                    record.signal().duration_secs(),
                )?;
            }
            per_seizure.push(SeizureResult {
                patient_id: patient_idx + 1,
                seizure_index: seizure_idx,
                mean_delta: summary.mean_delta().unwrap_or(f64::NAN),
                gmean_norm: summary.geometric_mean_normalized().unwrap_or(f64::NAN),
            });
        }
    }

    let per_patient = (0..cohort.patients().len())
        .map(|patient_idx| {
            let deltas: Vec<f64> = per_seizure
                .iter()
                .filter(|s| s.patient_id == patient_idx + 1)
                .map(|s| s.mean_delta)
                .collect();
            let norms: Vec<f64> = per_seizure
                .iter()
                .filter(|s| s.patient_id == patient_idx + 1)
                .map(|s| s.gmean_norm)
                .collect();
            PatientResult {
                patient_id: patient_idx + 1,
                median_delta: median(&deltas).unwrap_or(f64::NAN),
                median_norm_percent: median(&norms).unwrap_or(f64::NAN) * 100.0,
            }
        })
        .collect();

    let all_deltas: Vec<f64> = per_seizure.iter().map(|s| s.mean_delta).collect();
    let all_norms: Vec<f64> = per_seizure.iter().map(|s| s.gmean_norm).collect();
    let within = |threshold: f64| {
        all_deltas.iter().filter(|&&d| d <= threshold).count() as f64 / all_deltas.len() as f64
    };

    Ok(LabelingResults {
        scale,
        per_patient,
        overall_median_delta: median(&all_deltas).unwrap_or(f64::NAN),
        overall_median_norm: median(&all_norms).unwrap_or(f64::NAN),
        fraction_within_15s: within(15.0),
        fraction_within_30s: within(30.0),
        fraction_within_60s: within(60.0),
        per_seizure,
    })
}

impl LabelingResults {
    /// Formats Table I (per-patient δ in seconds and δ_norm in percent).
    pub fn format_table1(&self) -> String {
        let mut out = String::new();
        out.push_str("TABLE I. CLASSIFICATION PERFORMANCE PER PATIENT\n");
        out.push_str("ID        ");
        for p in &self.per_patient {
            out.push_str(&format!("{:>8}", p.patient_id));
        }
        out.push_str("\ndelta (s) ");
        for p in &self.per_patient {
            out.push_str(&format!("{:>8.1}", p.median_delta));
        }
        out.push_str("\ndnorm (%) ");
        for p in &self.per_patient {
            out.push_str(&format!("{:>8.1}", p.median_norm_percent));
        }
        out.push('\n');
        out
    }

    /// Formats Table II (mean δ in seconds for every seizure).
    pub fn format_table2(&self) -> String {
        let mut out = String::new();
        out.push_str("TABLE II. VALUE OF delta IN SECONDS PER SEIZURE\n");
        out.push_str("Patient | seizure number ->\n");
        for patient in &self.per_patient {
            out.push_str(&format!("   {:>2}   |", patient.patient_id));
            for s in self
                .per_seizure
                .iter()
                .filter(|s| s.patient_id == patient.patient_id)
            {
                out.push_str(&format!(" {:>6.0}", s.mean_delta));
            }
            out.push('\n');
        }
        out
    }

    /// Formats the headline numbers and detection-fraction summary of §VI-A.
    pub fn format_summary(&self) -> String {
        format!(
            "overall median delta = {:.1} s, median delta_norm = {:.4}\n\
             seizures within 15 s: {:.1} %, within 30 s: {:.1} %, within 60 s: {:.1} %\n\
             (paper reference: 10.1 s / 0.9935; 73.3 % / 86.7 % / 93.3 %)\n",
            self.overall_median_delta,
            self.overall_median_norm,
            self.fraction_within_15s * 100.0,
            self.fraction_within_30s * 100.0,
            self.fraction_within_60s * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seizure_core::algorithm::DetectorConfig;
    use seizure_data::sampler::SampleConfig;

    /// A miniature end-to-end run of the experiment machinery: a tiny custom
    /// scale is emulated by running the `with` variant on the quick scale but
    /// asserting only structural properties (the full quick run is exercised
    /// by the `table1` binary and recorded in EXPERIMENTS.md).
    #[test]
    fn experiment_structure_is_complete() {
        // Use a very small ad-hoc protocol: patch the quick scale by running
        // only through the public API but on the smallest preset.
        let results = run_mini().unwrap();
        assert_eq!(results.per_patient.len(), 9);
        assert_eq!(results.per_seizure.len(), 45);
        assert!(results.overall_median_delta.is_finite());
        assert!(results.overall_median_norm > 0.0 && results.overall_median_norm <= 1.0);
        assert!(results.fraction_within_60s >= results.fraction_within_30s);
        assert!(results.fraction_within_30s >= results.fraction_within_15s);

        let t1 = results.format_table1();
        assert!(t1.contains("TABLE I"));
        let t2 = results.format_table2();
        assert!(t2.contains("TABLE II"));
        let summary = results.format_summary();
        assert!(summary.contains("median delta"));
    }

    /// Runs the experiment with one sample per seizure on very short records
    /// so the test completes quickly even in debug builds.
    fn run_mini() -> Result<LabelingResults, CoreError> {
        let cohort = Cohort::chb_mit_like(1);
        let sample_config = SampleConfig::new(180.0, 240.0, 64.0).unwrap();
        let labeler = PosterioriLabeler::new(LabelerConfig {
            detector: DetectorConfig::default(),
            ..LabelerConfig::default()
        });
        let mut per_seizure = Vec::new();
        for patient_idx in 0..cohort.patients().len() {
            let w = cohort.average_seizure_duration(patient_idx)?;
            for seizure_idx in 0..cohort.seizures_of(patient_idx)?.len() {
                let record = cohort.sample_record(patient_idx, seizure_idx, &sample_config, 0)?;
                let label = labeler.label_record(&record, w)?;
                let mut summary = DeviationSummary::new();
                summary.record(
                    (record.annotation().onset(), record.annotation().offset()),
                    label.as_interval(),
                    record.signal().duration_secs(),
                )?;
                per_seizure.push(SeizureResult {
                    patient_id: patient_idx + 1,
                    seizure_index: seizure_idx,
                    mean_delta: summary.mean_delta().unwrap(),
                    gmean_norm: summary.geometric_mean_normalized().unwrap(),
                });
            }
        }
        let per_patient = (0..9)
            .map(|p| {
                let deltas: Vec<f64> = per_seizure
                    .iter()
                    .filter(|s| s.patient_id == p + 1)
                    .map(|s| s.mean_delta)
                    .collect();
                let norms: Vec<f64> = per_seizure
                    .iter()
                    .filter(|s| s.patient_id == p + 1)
                    .map(|s| s.gmean_norm)
                    .collect();
                PatientResult {
                    patient_id: p + 1,
                    median_delta: median(&deltas).unwrap(),
                    median_norm_percent: median(&norms).unwrap() * 100.0,
                }
            })
            .collect();
        let all: Vec<f64> = per_seizure.iter().map(|s| s.mean_delta).collect();
        let norms: Vec<f64> = per_seizure.iter().map(|s| s.gmean_norm).collect();
        let within = |t: f64| all.iter().filter(|&&d| d <= t).count() as f64 / all.len() as f64;
        Ok(LabelingResults {
            scale: ExperimentScale::Quick,
            per_patient,
            overall_median_delta: median(&all).unwrap(),
            overall_median_norm: median(&norms).unwrap(),
            fraction_within_15s: within(15.0),
            fraction_within_30s: within(30.0),
            fraction_within_60s: within(60.0),
            per_seizure,
        })
    }
}
