//! Unsupervised baseline (study E10 of `DESIGN.md`).
//!
//! The paper's related work (§II) cites k-means and k-medoids clustering as the
//! best-performing unsupervised seizure detectors but notes that "their
//! classification performance is significantly lower than in the supervised
//! case". This study quantifies that gap on the synthetic cohort: per-window
//! features are clustered into two groups (the minority cluster is declared
//! "seizure") and the resulting sensitivity/specificity/geometric mean is
//! compared against the supervised random forest trained on expert labels.

use crate::scale::ExperimentScale;
use seizure_core::label::{window_labels, SeizureLabel};
use seizure_core::realtime::{RealTimeDetector, RealTimeDetectorConfig};
use seizure_core::CoreError;
use seizure_data::cohort::Cohort;
use seizure_features::extractor::SlidingWindowConfig;
use seizure_ml::kmeans::{KMeans, KMeansConfig};
use seizure_ml::kmedoids::{KMedoids, KMedoidsConfig};
use seizure_ml::metrics::ConfusionMatrix;

/// Performance of one detector family in the baseline study.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Detector name.
    pub name: String,
    /// Pooled sensitivity over the evaluation records.
    pub sensitivity: f64,
    /// Pooled specificity.
    pub specificity: f64,
    /// Geometric mean of sensitivity and specificity.
    pub geometric_mean: f64,
}

/// Result of the unsupervised-baseline study.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResults {
    /// One entry per detector (k-means, k-medoids, supervised random forest).
    pub entries: Vec<BaselineEntry>,
}

fn minority_cluster(assignments: &[usize]) -> usize {
    let ones = assignments.iter().filter(|&&a| a == 1).count();
    if 2 * ones <= assignments.len() {
        1
    } else {
        0
    }
}

/// Runs the unsupervised-baseline comparison at the given scale.
///
/// # Errors
///
/// Propagates data-generation, feature-extraction, clustering and training
/// failures.
pub fn run_unsupervised_baseline(scale: ExperimentScale) -> Result<BaselineResults, CoreError> {
    let cohort = Cohort::chb_mit_like(42);
    let sample_config = scale.sample_config();
    let detector_config = RealTimeDetectorConfig::default();
    let patients = [0usize, 7]; // patients 1 and 8
    let detector_template = RealTimeDetector::new(detector_config);

    let mut kmeans_cm = ConfusionMatrix::default();
    let mut kmedoids_cm = ConfusionMatrix::default();
    let mut forest_cm = ConfusionMatrix::default();

    for &patient in &patients {
        let num_seizures = cohort.seizures_of(patient)?.len();
        let train_count = 2.min(num_seizures - 1);

        // Supervised reference: train on expert labels of the first records.
        let mut detector = RealTimeDetector::new(detector_config);
        let mut training = seizure_ml::dataset::Dataset::empty();
        for seizure in 0..train_count {
            let record = cohort.sample_record(patient, seizure, &sample_config, seizure as u64)?;
            let truth =
                SeizureLabel::new(record.annotation().onset(), record.annotation().offset())?;
            let windows = detector.build_training_windows(record.signal(), &truth)?;
            let balanced = detector.balance(&windows)?;
            if training.is_empty() {
                training = balanced;
            } else {
                training.extend(&balanced)?;
            }
        }
        detector.train(&training)?;

        // Evaluation records: the held-out seizures.
        for seizure in train_count..num_seizures {
            let record =
                cohort.sample_record(patient, seizure, &sample_config, 500 + seizure as u64)?;
            let signal = record.signal();
            let window = SlidingWindowConfig::new(
                signal.sampling_frequency(),
                detector_config.window_secs,
                detector_config.overlap,
            )?;
            let rows = detector_template.extract_features(signal)?;
            let truth_label =
                SeizureLabel::new(record.annotation().onset(), record.annotation().offset())?;
            let truth = window_labels(
                &truth_label,
                rows.len(),
                window.window_seconds(),
                window.step_seconds(),
            )?;

            // Normalize rows per feature for the clustering baselines.
            let normalized = normalize_rows(&rows);

            let kmeans = KMeans::fit(&normalized, &KMeansConfig::default(), 7)?;
            let assignments = kmeans.predict_batch(&normalized);
            let seizure_cluster = minority_cluster(&assignments);
            let predictions: Vec<bool> =
                assignments.iter().map(|&a| a == seizure_cluster).collect();
            kmeans_cm.merge(&ConfusionMatrix::from_predictions(&predictions, &truth)?);

            let kmedoids = KMedoids::fit(&normalized, &KMedoidsConfig::default(), 7)?;
            let assignments = kmedoids.predict_batch(&normalized);
            let seizure_cluster = minority_cluster(&assignments);
            let predictions: Vec<bool> =
                assignments.iter().map(|&a| a == seizure_cluster).collect();
            kmedoids_cm.merge(&ConfusionMatrix::from_predictions(&predictions, &truth)?);

            let predictions = detector.predict_rows(&rows)?;
            forest_cm.merge(&ConfusionMatrix::from_predictions(&predictions, &truth)?);
        }
    }

    let entry = |name: &str, cm: &ConfusionMatrix| BaselineEntry {
        name: name.to_string(),
        sensitivity: cm.sensitivity(),
        specificity: cm.specificity(),
        geometric_mean: cm.geometric_mean(),
    };
    Ok(BaselineResults {
        entries: vec![
            entry("k-means (unsupervised)", &kmeans_cm),
            entry("k-medoids (unsupervised)", &kmedoids_cm),
            entry("random forest (supervised, expert labels)", &forest_cm),
        ],
    })
}

fn normalize_rows(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    if rows.is_empty() {
        return Vec::new();
    }
    let f = rows[0].len();
    let n = rows.len() as f64;
    let mut means = vec![0.0; f];
    for row in rows {
        for (m, x) in means.iter_mut().zip(row) {
            *m += x;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut stds = vec![0.0; f];
    for row in rows {
        for ((s, x), m) in stds.iter_mut().zip(row).zip(&means) {
            *s += (x - m) * (x - m);
        }
    }
    for s in &mut stds {
        *s = (*s / n).sqrt();
    }
    rows.iter()
        .map(|row| {
            row.iter()
                .zip(means.iter().zip(stds.iter()))
                .map(|(x, (m, s))| if *s > 0.0 { (x - m) / s } else { x - m })
                .collect()
        })
        .collect()
}

impl BaselineResults {
    /// Formats the baseline comparison table.
    pub fn format(&self) -> String {
        let mut out = String::new();
        out.push_str("UNSUPERVISED BASELINE (E10): clustering vs supervised random forest\n");
        out.push_str("detector                                   | sens    | spec    | gmean\n");
        out.push_str("-------------------------------------------|---------|---------|-------\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{:<43}| {:6.3}  | {:6.3}  | {:6.3}\n",
                e.name, e.sensitivity, e.specificity, e.geometric_mean
            ));
        }
        out.push_str(
            "\n(the paper's related work reports that unsupervised clustering performs \
             significantly below the supervised detectors)\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minority_cluster_selection() {
        assert_eq!(minority_cluster(&[0, 0, 0, 1]), 1);
        assert_eq!(minority_cluster(&[1, 1, 1, 0]), 0);
        assert_eq!(minority_cluster(&[0, 1]), 1);
    }

    #[test]
    fn normalize_rows_zero_mean() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let normalized = normalize_rows(&rows);
        for c in 0..2 {
            let mean: f64 = normalized.iter().map(|r| r[c]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
        }
        assert!(normalize_rows(&[]).is_empty());
    }

    #[test]
    fn formatting_contains_all_entries() {
        let results = BaselineResults {
            entries: vec![BaselineEntry {
                name: "k-means".into(),
                sensitivity: 0.6,
                specificity: 0.7,
                geometric_mean: 0.65,
            }],
        };
        assert!(results.format().contains("k-means"));
        assert!(results.format().contains("0.650"));
    }
}
