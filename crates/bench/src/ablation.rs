//! Feature-count ablation (design-choice study E9 of `DESIGN.md`).
//!
//! The paper selects its ten features with backward elimination and states that
//! "extracting the ten most relevant features offers a proper trade-off between
//! accuracy and complexity". This study re-runs the a-posteriori labeling with
//! the `k` most relevant of those ten features (ranked on held-out training
//! records) and reports the labeling deviation as a function of `k`.

use crate::scale::ExperimentScale;
use seizure_core::algorithm::{posteriori_detect, DetectorConfig};
use seizure_core::label::window_labels;
use seizure_core::labeler::{LabelerConfig, PosterioriLabeler};
use seizure_core::metric::DeviationSummary;
use seizure_core::{CoreError, SeizureLabel};
use seizure_data::cohort::Cohort;
use seizure_features::extractor::{FeatureExtractor, SlidingWindowConfig};
use seizure_features::selection::{backward_elimination, CentroidSeparation};

/// Labeling quality with a given number of features.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// Number of (most relevant) features used.
    pub num_features: usize,
    /// Mean δ in seconds over the evaluation records.
    pub mean_delta: f64,
    /// Geometric mean of δ_norm over the evaluation records.
    pub gmean_norm: f64,
}

/// Result of the feature-count ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResults {
    /// Ranking of the ten paper features from most to least relevant
    /// (indices into the paper feature set).
    pub ranking: Vec<usize>,
    /// Names of the ranked features, most relevant first.
    pub ranked_names: Vec<String>,
    /// One point per evaluated feature count.
    pub points: Vec<AblationPoint>,
}

/// Runs the ablation at the given scale. A handful of records from three
/// patients of different difficulty are used for evaluation; the feature
/// ranking is computed on separate training records using the ground truth.
///
/// # Errors
///
/// Propagates data-generation, feature-extraction and labeling failures.
pub fn run_feature_ablation(scale: ExperimentScale) -> Result<AblationResults, CoreError> {
    let cohort = Cohort::chb_mit_like(42);
    let sample_config = scale.sample_config();
    let labeler = PosterioriLabeler::new(LabelerConfig::default());
    let patients = [0usize, 4, 7]; // mixed difficulty: 1, 5, 8
    let samples_per_patient = scale.samples_per_seizure().clamp(1, 3);

    // 1. Rank the ten features with backward elimination on training records,
    //    using the ground-truth window labels.
    let mut ranking_votes = [0.0f64; 10];
    for &patient in &patients {
        let record = cohort.sample_record(patient, 0, &sample_config, 9999)?;
        let features = labeler.extract_features(record.signal())?;
        let window = SlidingWindowConfig::new(
            record.signal().sampling_frequency(),
            labeler.config().window_secs,
            labeler.config().overlap,
        )?;
        let truth = SeizureLabel::new(record.annotation().onset(), record.annotation().offset())?;
        let labels = window_labels(
            &truth,
            features.num_windows(),
            window.window_seconds(),
            window.step_seconds(),
        )?;
        let elimination = backward_elimination(&features, &labels, &CentroidSeparation)?;
        for (rank, &feature) in elimination.ranking.iter().enumerate() {
            ranking_votes[feature] += (10 - rank) as f64;
        }
    }
    let mut ranking: Vec<usize> = (0..10).collect();
    ranking.sort_by(|&a, &b| ranking_votes[b].total_cmp(&ranking_votes[a]));

    // 2. Evaluate the labeling with the top-k features.
    let mut points = Vec::new();
    for k in [2usize, 4, 6, 8, 10] {
        let selected = &ranking[..k];
        let mut summary = DeviationSummary::new();
        for &patient in &patients {
            let w = cohort.average_seizure_duration(patient)?;
            for seizure in 0..cohort.seizures_of(patient)?.len().min(2) {
                for sample in 0..samples_per_patient {
                    let record =
                        cohort.sample_record(patient, seizure, &sample_config, sample as u64)?;
                    let features = labeler.extract_features(record.signal())?;
                    let projected = features.select_columns(selected)?;
                    let window = SlidingWindowConfig::new(
                        record.signal().sampling_frequency(),
                        labeler.config().window_secs,
                        labeler.config().overlap,
                    )?;
                    let w_rows = ((w / window.step_seconds()).round() as usize).max(1);
                    let detection =
                        posteriori_detect(&projected, w_rows, &DetectorConfig::default())?;
                    let onset = window.window_start_seconds(detection.window_index);
                    let offset = (onset + w_rows as f64 * window.step_seconds())
                        .min(record.signal().duration_secs());
                    summary.record(
                        (record.annotation().onset(), record.annotation().offset()),
                        (onset, offset),
                        record.signal().duration_secs(),
                    )?;
                }
            }
        }
        points.push(AblationPoint {
            num_features: k,
            mean_delta: summary.mean_delta().unwrap_or(f64::NAN),
            gmean_norm: summary.geometric_mean_normalized().unwrap_or(f64::NAN),
        });
    }

    // Feature names for reporting.
    let names = seizure_features::extractor::PaperFeatureSet::new(256.0)?.feature_names();
    let ranked_names = ranking.iter().map(|&i| names[i].clone()).collect();
    Ok(AblationResults {
        ranking,
        ranked_names,
        points,
    })
}

impl AblationResults {
    /// Formats the ablation table.
    pub fn format(&self) -> String {
        let mut out = String::new();
        out.push_str("FEATURE ABLATION (E9): labeling quality vs number of features\n");
        out.push_str("feature ranking (most relevant first):\n");
        for (rank, name) in self.ranked_names.iter().enumerate() {
            out.push_str(&format!("  {:>2}. {}\n", rank + 1, name));
        }
        out.push_str("\n#features | mean delta (s) | gmean delta_norm\n");
        out.push_str("----------|----------------|-----------------\n");
        for p in &self.points {
            out.push_str(&format!(
                "    {:>2}    |    {:>9.1}   |      {:.4}\n",
                p.num_features, p.mean_delta, p.gmean_norm
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_lists_points_and_ranking() {
        let results = AblationResults {
            ranking: vec![0, 1],
            ranked_names: vec!["a".into(), "b".into()],
            points: vec![AblationPoint {
                num_features: 2,
                mean_delta: 12.0,
                gmean_norm: 0.98,
            }],
        };
        let text = results.format();
        assert!(text.contains("FEATURE ABLATION"));
        assert!(text.contains(" 1. a"));
        assert!(text.contains("0.98"));
    }
}
