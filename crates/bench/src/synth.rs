//! Deterministic synthetic EEG signals shared by the benchmark binaries.

/// Two channels of deterministic synthetic EEG: low-frequency tones plus
/// LCG pseudo-noise seeded with `noise_seed`, so every bench pins its own
/// reproducible workload while sharing one signal recipe.
pub fn synth_channels(secs: f64, fs: f64, noise_seed: u64) -> (Vec<f64>, Vec<f64>) {
    let n = (secs * fs) as usize;
    let mut state = noise_seed;
    let mut noise = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let mut channel = |phase: f64| {
        (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (2.0 * std::f64::consts::PI * 3.0 * t + phase).sin()
                    + 0.6 * (2.0 * std::f64::consts::PI * 7.0 * t).sin()
                    + 0.3 * (2.0 * std::f64::consts::PI * 21.0 * t + phase).cos()
                    + 0.4 * noise()
            })
            .collect::<Vec<f64>>()
    };
    let left = channel(0.0);
    let right = channel(1.3);
    (left, right)
}
