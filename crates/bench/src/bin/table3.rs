//! Regenerates Table III (per-task current, duty cycle, average current and
//! energy share for the worst case of one seizure per day) and the Fig. 5
//! energy-breakdown series.
//!
//! ```text
//! cargo run -p seizure-bench --release --bin table3
//! ```

use seizure_edge::energy::{EnergyModel, OperatingMode};
use seizure_edge::platform::PlatformSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = EnergyModel::new(PlatformSpec::stm32l151_default());
    let report = model.lifetime(OperatingMode::Combined, 1.0)?;

    println!("TABLE III. BATTERY LIFETIME OF THE SYSTEM FOR THE WORST CASE (ONE SEIZURE PER DAY)");
    println!("task                  | current (mA) | duty (%) | avg current (mA) | energy (%)");
    println!("----------------------|--------------|----------|------------------|-----------");
    let percentages = report.energy_percentages();
    for (task, pct) in report.tasks().tasks().iter().zip(percentages.iter()) {
        println!(
            "{:<22}| {:>12.3} | {:>8.2} | {:>16.3} | {:>9.2}",
            task.name,
            task.current_ma,
            task.duty_cycle * 100.0,
            task.average_current_ma(),
            pct
        );
    }
    println!(
        "battery lifetime: {:.2} days ({:.2} hours) — paper reference: 2.59 days",
        report.lifetime_days(),
        report.lifetime_hours()
    );

    println!("\nFIG. 5: percentage of energy consumption of each task");
    for (task, pct) in report.tasks().tasks().iter().zip(percentages.iter()) {
        let bars = (pct / 2.0).round() as usize;
        println!("{:<22}| {:>6.2} % {}", task.name, pct, "#".repeat(bars));
    }
    Ok(())
}
