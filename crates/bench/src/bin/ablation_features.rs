//! Feature-count ablation (study E9): labeling quality as a function of the
//! number of (backward-elimination-ranked) features.
//!
//! ```text
//! cargo run -p seizure-bench --release --bin ablation_features [-- --scale quick|medium|paper]
//! ```

use seizure_bench::ablation::run_feature_ablation;
use seizure_bench::ExperimentScale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_args();
    eprintln!("running the feature ablation at scale `{scale}`…");
    let results = run_feature_ablation(scale)?;
    println!("{}", results.format());
    Ok(())
}
