//! Regenerates the §VI-C lifetime ranges: battery lifetime versus seizure
//! frequency for the labeling-only mode (631.46 → 430.16 hours, i.e. 26.31 →
//! 17.92 days) and for the combined self-learning system (2.71 → 2.59 days),
//! plus the detection-only reference point (65.15 hours).
//!
//! ```text
//! cargo run -p seizure-bench --release --bin lifetime_sweep
//! ```

use seizure_edge::energy::{EnergyModel, OperatingMode};
use seizure_edge::platform::PlatformSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = EnergyModel::new(PlatformSpec::stm32l151_default());

    let detection = model.lifetime(OperatingMode::DetectionOnly, 0.0)?;
    println!(
        "detection only: {:.2} hours ({:.2} days) — paper reference: 65.15 hours (2.71 days)\n",
        detection.lifetime_hours(),
        detection.lifetime_days()
    );

    println!("seizures/day | labeling-only lifetime        | combined lifetime");
    println!("             |   hours      days             |   hours      days");
    println!("-------------|-------------------------------|---------------------");
    for report in model.lifetime_sweep(OperatingMode::Combined, 1.0 / 30.0, 1.0, 8)? {
        let labeling = model.lifetime(OperatingMode::LabelingOnly, report.seizures_per_day())?;
        println!(
            "  {:>9.4}  | {:>8.2}  {:>8.2}            | {:>8.2}  {:>8.2}",
            report.seizures_per_day(),
            labeling.lifetime_hours(),
            labeling.lifetime_days(),
            report.lifetime_hours(),
            report.lifetime_days()
        );
    }
    println!(
        "\npaper reference: labeling-only 631.46 → 430.16 hours (26.31 → 17.92 days), \
         combined 2.71 → 2.59 days"
    );
    Ok(())
}
