//! Unsupervised clustering baseline (study E10): k-means and k-medoids window
//! clustering versus the supervised random-forest detector.
//!
//! ```text
//! cargo run -p seizure-bench --release --bin baseline_unsupervised [-- --scale quick|medium|paper]
//! ```

use seizure_bench::unsupervised::run_unsupervised_baseline;
use seizure_bench::ExperimentScale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_args();
    eprintln!("running the unsupervised baseline at scale `{scale}`…");
    let results = run_unsupervised_baseline(scale)?;
    println!("{}", results.format());
    Ok(())
}
