//! Regenerates Fig. 4: geometric mean of the real-time detector trained with
//! doctor (expert) labels versus algorithm-produced labels, per subject, plus
//! the overall degradation numbers (paper: 2.35 % / 2.43 % / 2.26 %).
//!
//! ```text
//! cargo run -p seizure-bench --release --bin fig4 [-- --scale quick|medium|paper]
//! ```

use seizure_bench::training::run_training_experiment;
use seizure_bench::ExperimentScale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_args();
    eprintln!("running the Fig. 4 experiment at scale `{scale}`…");
    let results = run_training_experiment(scale)?;
    println!("{}", results.format());
    Ok(())
}
