//! Regenerates Table II (mean δ per seizure) and the detection-fraction
//! summary (73.3 % / 86.7 % / 93.3 % within 15 / 30 / 60 s in the paper).
//!
//! ```text
//! cargo run -p seizure-bench --release --bin table2 [-- --scale quick|medium|paper]
//! ```

use seizure_bench::labeling::run_labeling_experiment;
use seizure_bench::ExperimentScale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_args();
    eprintln!("running the labeling experiment at scale `{scale}`…");
    let results = run_labeling_experiment(scale)?;
    println!("{}", results.format_table2());
    println!("{}", results.format_summary());
    Ok(())
}
