//! Regenerates Table I (per-patient δ / δ_norm) and the §VI-A headline numbers.
//!
//! ```text
//! cargo run -p seizure-bench --release --bin table1 [-- --scale quick|medium|paper]
//! ```

use seizure_bench::labeling::run_labeling_experiment;
use seizure_bench::ExperimentScale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_args();
    eprintln!(
        "running the labeling experiment at scale `{scale}` \
         ({} samples per seizure, records up to {:.0} s at {:.0} Hz)…",
        scale.samples_per_seizure(),
        scale.sample_config().max_duration_secs(),
        scale.sample_config().sampling_frequency()
    );
    let results = run_labeling_experiment(scale)?;
    println!("{}", results.format_table1());
    println!("{}", results.format_summary());
    Ok(())
}
