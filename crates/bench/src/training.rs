//! The Fig. 4 experiment: real-time detector trained with expert labels versus
//! algorithm-produced labels.
//!
//! Protocol (§VI-B): per patient, a balanced training set of a few seizures is
//! assembled (between 2 and 5, from the same subject), once with expert labels
//! and once with labels produced by the a-posteriori algorithm; the remaining
//! seizures of the patient are used for evaluation. The per-subject geometric
//! mean of sensitivity and specificity is reported for both label sources, and
//! the overall degradation is the headline number (paper: 2.35 %).

use crate::scale::ExperimentScale;
use seizure_core::labeler::LabelerConfig;
use seizure_core::pipeline::{LabelSource, SelfLearningPipeline};
use seizure_core::realtime::RealTimeDetectorConfig;
use seizure_core::CoreError;
use seizure_data::cohort::Cohort;
use seizure_ml::forest::RandomForestConfig;

/// Per-patient comparison (one pair of bars in Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct PatientComparison {
    /// 1-based patient identifier.
    pub patient_id: usize,
    /// Number of seizures used for training.
    pub training_seizures: usize,
    /// Number of held-out seizures used for evaluation.
    pub evaluation_seizures: usize,
    /// Geometric mean with expert-labeled training data.
    pub expert_gmean: f64,
    /// Geometric mean with algorithm-labeled training data.
    pub algorithm_gmean: f64,
    /// Sensitivity with expert labels.
    pub expert_sensitivity: f64,
    /// Sensitivity with algorithm labels.
    pub algorithm_sensitivity: f64,
    /// Specificity with expert labels.
    pub expert_specificity: f64,
    /// Specificity with algorithm labels.
    pub algorithm_specificity: f64,
}

/// Complete result of the Fig. 4 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingResults {
    /// Scale the experiment was run at.
    pub scale: ExperimentScale,
    /// Per-patient comparisons.
    pub per_patient: Vec<PatientComparison>,
    /// Mean geometric mean across subjects with expert labels (paper: 94.95 %).
    pub mean_expert_gmean: f64,
    /// Mean geometric mean across subjects with algorithm labels
    /// (paper: 92.60 %).
    pub mean_algorithm_gmean: f64,
    /// Degradation of the geometric mean in percentage points (paper: 2.35 %).
    pub gmean_degradation_points: f64,
    /// Degradation of the sensitivity in percentage points (paper: 2.43 %).
    pub sensitivity_degradation_points: f64,
    /// Degradation of the specificity in percentage points (paper: 2.26 %).
    pub specificity_degradation_points: f64,
}

/// Runs the Fig. 4 experiment at the given scale.
///
/// # Errors
///
/// Propagates data-generation, labeling and training failures.
pub fn run_training_experiment(scale: ExperimentScale) -> Result<TrainingResults, CoreError> {
    let cohort = Cohort::chb_mit_like(42);
    let sample_config = scale.sample_config();
    let detector_config = RealTimeDetectorConfig {
        forest: RandomForestConfig {
            n_trees: 25,
            max_depth: 8,
            ..RandomForestConfig::default()
        },
        ..RealTimeDetectorConfig::default()
    };

    let mut per_patient = Vec::with_capacity(cohort.patients().len());
    for patient_idx in 0..cohort.patients().len() {
        let num_seizures = cohort.seizures_of(patient_idx)?.len();
        // The paper uses balanced training sets of 2–5 seizures from the same
        // subject; keep at least one seizure held out for evaluation.
        let training_seizures = (num_seizures * 2 / 3).clamp(2, 5).min(num_seizures - 1);
        let w = cohort.average_seizure_duration(patient_idx)?;

        let held_out: Vec<_> = (training_seizures..num_seizures)
            .map(|s| cohort.sample_record(patient_idx, s, &sample_config, 1000 + s as u64))
            .collect::<Result<_, _>>()?;

        let run =
            |source: LabelSource| -> Result<seizure_core::pipeline::SelfLearningReport, CoreError> {
                let mut pipeline =
                    SelfLearningPipeline::new(LabelerConfig::default(), detector_config);
                for seizure in 0..training_seizures {
                    let record = cohort.sample_record(
                        patient_idx,
                        seizure,
                        &sample_config,
                        seizure as u64,
                    )?;
                    pipeline.observe_missed_seizure(&record, w, source)?;
                }
                pipeline.evaluate_all(&held_out)
            };

        let expert = run(LabelSource::Expert)?;
        let algorithm = run(LabelSource::Algorithm)?;
        per_patient.push(PatientComparison {
            patient_id: patient_idx + 1,
            training_seizures,
            evaluation_seizures: held_out.len(),
            expert_gmean: expert.geometric_mean,
            algorithm_gmean: algorithm.geometric_mean,
            expert_sensitivity: expert.sensitivity,
            algorithm_sensitivity: algorithm.sensitivity,
            expert_specificity: expert.specificity,
            algorithm_specificity: algorithm.specificity,
        });
    }

    let mean = |f: &dyn Fn(&PatientComparison) -> f64| {
        per_patient.iter().map(f).sum::<f64>() / per_patient.len() as f64
    };
    let mean_expert_gmean = mean(&|p| p.expert_gmean);
    let mean_algorithm_gmean = mean(&|p| p.algorithm_gmean);
    let mean_expert_sens = mean(&|p| p.expert_sensitivity);
    let mean_algo_sens = mean(&|p| p.algorithm_sensitivity);
    let mean_expert_spec = mean(&|p| p.expert_specificity);
    let mean_algo_spec = mean(&|p| p.algorithm_specificity);

    Ok(TrainingResults {
        scale,
        per_patient,
        mean_expert_gmean,
        mean_algorithm_gmean,
        gmean_degradation_points: (mean_expert_gmean - mean_algorithm_gmean) * 100.0,
        sensitivity_degradation_points: (mean_expert_sens - mean_algo_sens) * 100.0,
        specificity_degradation_points: (mean_expert_spec - mean_algo_spec) * 100.0,
    })
}

impl TrainingResults {
    /// Formats the Fig. 4 series (per-subject geometric means for both label
    /// sources) and the headline degradation numbers.
    pub fn format(&self) -> String {
        let mut out = String::new();
        out.push_str("FIG. 4: geometric mean, doctor-labeled vs algorithm-labeled training\n");
        out.push_str("patient | train/eval seizures | expert gmean | algorithm gmean\n");
        out.push_str("--------|---------------------|--------------|----------------\n");
        for p in &self.per_patient {
            out.push_str(&format!(
                "   {:>2}   |        {}/{}          |    {:6.2} %  |     {:6.2} %\n",
                p.patient_id,
                p.training_seizures,
                p.evaluation_seizures,
                p.expert_gmean * 100.0,
                p.algorithm_gmean * 100.0
            ));
        }
        out.push_str(&format!(
            "\noverall: expert {:.2} %, algorithm {:.2} %, degradation {:.2} points \
             (sensitivity {:.2}, specificity {:.2})\n\
             (paper reference: 94.95 % vs 92.60 %, degradation 2.35 / 2.43 / 2.26)\n",
            self.mean_expert_gmean * 100.0,
            self.mean_algorithm_gmean * 100.0,
            self.gmean_degradation_points,
            self.sensitivity_degradation_points,
            self.specificity_degradation_points,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_contains_all_patients() {
        let results = TrainingResults {
            scale: ExperimentScale::Quick,
            per_patient: vec![PatientComparison {
                patient_id: 1,
                training_seizures: 3,
                evaluation_seizures: 4,
                expert_gmean: 0.95,
                algorithm_gmean: 0.92,
                expert_sensitivity: 0.96,
                algorithm_sensitivity: 0.93,
                expert_specificity: 0.94,
                algorithm_specificity: 0.92,
            }],
            mean_expert_gmean: 0.95,
            mean_algorithm_gmean: 0.92,
            gmean_degradation_points: 3.0,
            sensitivity_degradation_points: 3.0,
            specificity_degradation_points: 2.0,
        };
        let text = results.format();
        assert!(text.contains("FIG. 4"));
        assert!(text.contains("degradation"));
        assert!(text.contains("95.00"));
    }
}
