//! # seizure-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§VI) on the synthetic CHB-MIT-like cohort, plus the ablation
//! and baseline studies listed in `DESIGN.md`.
//!
//! Each experiment is exposed as a library function returning a plain result
//! struct, and a thin binary (`table1`, `table2`, `fig4`, `table3`,
//! `lifetime_sweep`, `ablation_features`, `baseline_unsupervised`) formats it
//! for the terminal. Every binary accepts `--scale quick|medium|paper`
//! (default `quick`) so the same code runs both as a fast smoke test and at
//! the paper's full scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod labeling;
pub mod scale;
pub mod synth;
pub mod training;
pub mod unsupervised;

pub use scale::ExperimentScale;
