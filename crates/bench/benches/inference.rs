//! End-to-end inference benchmark: seed path vs batch engine vs streaming.
//!
//! Measures windows/second for the full hot path of the real-time detector —
//! sliding-window rich-feature extraction followed by random-forest
//! classification — in three configurations:
//!
//! * **seed**: per-window `extract_window` (allocating) + per-row boxed
//!   `RandomForest::predict_proba`, exactly the seed implementation's path;
//! * **batch**: `extract_batch` (flat matrix, per-thread scratch, parallel
//!   windows) + `FlatForest::predict_proba_batch` over the flat buffer;
//! * **streaming**: `StreamingRichExtractor::extract_batch_into` — the
//!   hop-structured path that carries moments, ordinal pattern tables and
//!   wavelet coefficients across the 75 % window overlap instead of
//!   recomputing each window from scratch — plus the same flat forest.
//!
//! Also times the forest in isolation (boxed pointer-chasing vs flat
//! struct-of-arrays). Results are printed and written to
//! `BENCH_inference.json` at the workspace root.
//!
//! Run with: `cargo bench -p seizure-bench --bench inference`
//!
//! Pass `--quick` (the CI smoke gate) for a shortened signal and rep count
//! that still asserts streaming-vs-batch probability equivalence and a
//! conservative streaming speedup floor, without rewriting the JSON.

use std::time::Instant;

use seizure_bench::synth::synth_channels;
use seizure_features::extractor::{FeatureExtractor, RichFeatureSet, SlidingWindowConfig};
use seizure_features::streaming::StreamingRichExtractor;
use seizure_features::FeatureMatrix;
use seizure_ml::dataset::Dataset;
use seizure_ml::flat::FlatForest;
use seizure_ml::forest::{RandomForest, RandomForestConfig};

/// Best-of-`reps` wall time of `f`, after one warmup run.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut result = f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        result = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, result)
}

fn main() {
    let quick = std::env::args().any(|arg| arg == "--quick");
    let fs = 256.0;
    let secs = if quick { 24.0 } else { 120.0 };
    let reps = if quick { 2 } else { 5 };
    let (a, b) = synth_channels(secs, fs, 0x1234_5678_9abc_def0);
    let cfg = SlidingWindowConfig::paper_default(fs).expect("paper config");
    let extractor = RichFeatureSet::new(fs).expect("extractor");
    let windows = cfg.num_windows(a.len());

    // Train a forest on the record's own features with a synthetic seizure
    // band so both classes are present (the band scales with the signal so
    // `--quick`'s short record still trains).
    let matrix = extractor
        .extract_batch(&a, &b, &cfg)
        .expect("training features");
    let seizure_band = windows / 3..windows / 3 + windows / 4;
    let labels: Vec<bool> = (0..windows).map(|i| seizure_band.contains(&i)).collect();
    let dataset = Dataset::new(matrix.to_rows(), labels).expect("dataset");
    let forest_config = RandomForestConfig {
        n_trees: 30,
        max_depth: 8,
        ..RandomForestConfig::default()
    };
    let forest = RandomForest::fit(&dataset, &forest_config, 7).expect("forest");
    let flat = FlatForest::from_forest(&forest);

    // --- End-to-end: seed path (per-window alloc + boxed forest). ---
    let (seed_time, seed_probas) = best_of(reps, || {
        let mut probas = Vec::with_capacity(windows);
        for (w1, w2) in cfg.windows(&a).zip(cfg.windows(&b)) {
            let row = extractor.extract_window(w1, w2).expect("window features");
            probas.push(forest.predict_proba(&row));
        }
        probas
    });

    // --- End-to-end: batch engine (flat matrix + flat forest). ---
    let (batch_time, batch_probas) = best_of(reps, || {
        let m = extractor
            .extract_batch(&a, &b, &cfg)
            .expect("batch features");
        flat.predict_proba_batch(m.data(), m.num_features())
            .expect("batch probas")
    });

    // --- End-to-end: streaming engine (hop-structured recompute
    // elimination + flat forest), steady-state buffers reused across reps.
    let mut stream = StreamingRichExtractor::new(&cfg).expect("streaming extractor");
    let mut stream_matrix = FeatureMatrix::default();
    let mut streaming_probas: Vec<f64> = Vec::new();
    let (streaming_time, _) = best_of(reps, || {
        stream
            .extract_batch_into(&a, &b, &mut stream_matrix)
            .expect("streaming features");
        flat.predict_proba_batch_into(
            stream_matrix.data(),
            stream_matrix.num_features(),
            &mut streaming_probas,
        )
        .expect("streaming probas");
    });

    assert_eq!(seed_probas.len(), batch_probas.len());
    assert_eq!(streaming_probas.len(), batch_probas.len());
    for (s, p) in seed_probas.iter().zip(batch_probas.iter()) {
        assert!(
            (s - p).abs() < 1e-9,
            "batch path diverged from seed path: {s} vs {p}"
        );
    }
    for (s, p) in streaming_probas.iter().zip(batch_probas.iter()) {
        assert!(
            (s - p).abs() < 1e-6,
            "streaming path diverged from batch path: {s} vs {p}"
        );
    }

    // --- Forest in isolation: boxed per-row vs flat batch. ---
    let rows = matrix.to_rows();
    let (boxed_forest_time, _) = best_of(reps, || {
        rows.iter().map(|r| forest.predict_proba(r)).sum::<f64>()
    });
    let (flat_forest_time, _) = best_of(reps, || {
        flat.predict_proba_batch(matrix.data(), matrix.num_features())
            .expect("flat probas")
            .iter()
            .sum::<f64>()
    });

    let seed_wps = windows as f64 / seed_time;
    let batch_wps = windows as f64 / batch_time;
    let streaming_wps = windows as f64 / streaming_time;
    let speedup = batch_wps / seed_wps;
    let streaming_speedup = streaming_wps / batch_wps;
    let boxed_wps = windows as f64 / boxed_forest_time;
    let flat_wps = windows as f64 / flat_forest_time;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("inference bench ({windows} windows, {secs} s at {fs} Hz, {threads} thread(s))");
    println!(
        "  end-to-end seed path:   {seed_wps:>10.1} windows/s ({:.3} ms/window)",
        1e3 * seed_time / windows as f64
    );
    println!(
        "  end-to-end batch path:  {batch_wps:>10.1} windows/s ({:.3} ms/window)",
        1e3 * batch_time / windows as f64
    );
    println!(
        "  end-to-end streaming:   {streaming_wps:>10.1} windows/s ({:.3} ms/window)",
        1e3 * streaming_time / windows as f64
    );
    println!("  batch vs seed:          {speedup:>10.2}x");
    println!("  streaming vs batch:     {streaming_speedup:>10.2}x");
    println!("  boxed forest:           {boxed_wps:>10.1} windows/s");
    println!("  flat forest (batch):    {flat_wps:>10.1} windows/s");
    println!("  forest speedup:         {:>10.2}x", flat_wps / boxed_wps);

    if quick {
        // CI smoke gate: probability equivalence was asserted above; the
        // speedup floor is deliberately conservative (the full run's target
        // is >= 3x) so a loaded CI worker doesn't flake the build.
        assert!(
            streaming_speedup >= 1.2,
            "streaming gate: expected at least a 1.2x end-to-end win over the \
             batch path even on a short signal, measured {streaming_speedup:.2}x"
        );
        println!("quick gate passed (streaming {streaming_speedup:.2}x batch, probas within 1e-6)");
        return;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"inference\",\n",
            "  \"signal_seconds\": {:.1},\n",
            "  \"sampling_hz\": {:.1},\n",
            "  \"windows\": {},\n",
            "  \"threads\": {},\n",
            "  \"end_to_end\": {{\n",
            "    \"seed_windows_per_sec\": {:.1},\n",
            "    \"batch_windows_per_sec\": {:.1},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"streaming\": {{\n",
            "    \"windows_per_sec\": {:.1},\n",
            "    \"speedup_vs_batch\": {:.2}\n",
            "  }},\n",
            "  \"forest_only\": {{\n",
            "    \"boxed_windows_per_sec\": {:.1},\n",
            "    \"flat_windows_per_sec\": {:.1},\n",
            "    \"speedup\": {:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        secs,
        fs,
        windows,
        threads,
        seed_wps,
        batch_wps,
        speedup,
        streaming_wps,
        streaming_speedup,
        boxed_wps,
        flat_wps,
        flat_wps / boxed_wps,
    );
    // cargo runs benches with the package directory as cwd; anchor the
    // result file at the workspace root.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_inference.json");
    std::fs::write(&path, &json).expect("write BENCH_inference.json");
    println!("wrote {}", path.display());
}
