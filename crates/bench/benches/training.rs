//! Forest-training benchmark: seed path vs the scratch-backed engine.
//!
//! Measures training-set samples/second for random-forest fitting in three
//! configurations:
//!
//! * **seed**: the boxed path — `RandomForest::fit` (per-node sorting and
//!   allocation) followed by `FlatForest::from_forest`, exactly what the
//!   seed's retraining loop ran;
//! * **engine, 1 thread**: `TrainingSet` presort + `train_forest` pinned to
//!   one worker via `SEIZURE_NUM_THREADS=1` — isolates the presorted-column
//!   and arena wins from the parallel scaling;
//! * **engine, N threads**: the same with the machine's full parallelism.
//!
//! The engine's output is asserted bit-identical to the seed path before any
//! timing is reported. Results are printed and written to
//! `BENCH_training.json` at the workspace root (skipped in `--quick` mode,
//! which the CI smoke job uses).
//!
//! Run with: `cargo bench -p seizure-bench --bench training [-- --quick]`

use std::time::Instant;

use seizure_bench::synth::synth_channels;
use seizure_features::extractor::{FeatureExtractor, RichFeatureSet, SlidingWindowConfig};
use seizure_ml::dataset::Dataset;
use seizure_ml::flat::FlatForest;
use seizure_ml::forest::{RandomForest, RandomForestConfig};
use seizure_ml::training::{train_forest, TrainingSet};

/// Best-of-`reps` wall time of `f`, after one warmup run.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut result = f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        result = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, result)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let fs = 256.0;
    let secs = if quick { 30.0 } else { 3600.0 };
    let reps = if quick { 2 } else { 5 };

    // Build a realistic training set: rich features of a synthetic record
    // with a seizure band so both classes are present.
    let (a, b) = synth_channels(secs, fs, 0x9876_5432_10ab_cdef);
    let cfg = SlidingWindowConfig::paper_default(fs).expect("paper config");
    let extractor = RichFeatureSet::new(fs).expect("extractor");
    let matrix = extractor.extract_batch(&a, &b, &cfg).expect("features");
    let samples = matrix.num_windows();
    let num_features = matrix.num_features();
    let labels: Vec<bool> = (0..samples)
        .map(|i| (samples / 4..samples / 2).contains(&i))
        .collect();
    let rows = matrix.to_rows();
    let dataset = Dataset::new(rows, labels.clone()).expect("dataset");
    let forest_config = RandomForestConfig {
        n_trees: 30,
        max_depth: 8,
        ..RandomForestConfig::default()
    };
    let seed = 7;

    // Bit-identity gate: the engine must reproduce the seed forest exactly
    // before any of its timings mean anything.
    let reference = FlatForest::from_forest(
        &RandomForest::fit(&dataset, &forest_config, seed).expect("seed forest"),
    );
    let set = TrainingSet::from_rows(matrix.data(), num_features, &labels).expect("training set");
    let engine_forest = train_forest(&set, &forest_config, seed).expect("engine forest");
    assert_eq!(
        engine_forest, reference,
        "training engine diverged from the seed path"
    );

    // --- Seed path: boxed per-node fit + flat compilation. ---
    let (seed_time, _) = best_of(reps, || {
        FlatForest::from_forest(
            &RandomForest::fit(&dataset, &forest_config, seed).expect("seed forest"),
        )
    });

    // --- Engine, single worker (presort + arena wins only). ---
    // Restore (not delete) any caller-set pin afterwards, so the N-thread
    // phase below honors the documented SEIZURE_NUM_THREADS override.
    let pinned = std::env::var("SEIZURE_NUM_THREADS").ok();
    std::env::set_var("SEIZURE_NUM_THREADS", "1");
    let (engine_1t_time, _) = best_of(reps, || {
        let set =
            TrainingSet::from_rows(matrix.data(), num_features, &labels).expect("training set");
        train_forest(&set, &forest_config, seed).expect("engine forest")
    });
    match &pinned {
        Some(value) => std::env::set_var("SEIZURE_NUM_THREADS", value),
        None => std::env::remove_var("SEIZURE_NUM_THREADS"),
    }

    // --- Engine, all workers (parallel tree fitting on top). ---
    let (engine_nt_time, _) = best_of(reps, || {
        let set =
            TrainingSet::from_rows(matrix.data(), num_features, &labels).expect("training set");
        train_forest(&set, &forest_config, seed).expect("engine forest")
    });

    let sps = |t: f64| samples as f64 / t;
    let threads = seizure_parallel::num_threads();

    println!(
        "training bench ({samples} samples x {num_features} features, {} trees, {threads} thread(s))",
        forest_config.n_trees
    );
    println!(
        "  seed fit (boxed):        {:>10.1} samples/s ({:.1} ms/fit)",
        sps(seed_time),
        1e3 * seed_time
    );
    println!(
        "  engine fit (1 thread):   {:>10.1} samples/s ({:.1} ms/fit, {:.2}x)",
        sps(engine_1t_time),
        1e3 * engine_1t_time,
        seed_time / engine_1t_time
    );
    println!(
        "  engine fit ({threads} threads):  {:>10.1} samples/s ({:.1} ms/fit, {:.2}x)",
        sps(engine_nt_time),
        1e3 * engine_nt_time,
        seed_time / engine_nt_time
    );

    if quick {
        println!("--quick: skipping BENCH_training.json");
        return;
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"training\",\n",
            "  \"samples\": {},\n",
            "  \"features\": {},\n",
            "  \"trees\": {},\n",
            "  \"threads\": {},\n",
            "  \"seed_samples_per_sec\": {:.1},\n",
            "  \"engine_1thread_samples_per_sec\": {:.1},\n",
            "  \"engine_nthread_samples_per_sec\": {:.1},\n",
            "  \"speedup_1thread\": {:.2},\n",
            "  \"speedup_nthread\": {:.2}\n",
            "}}\n"
        ),
        samples,
        num_features,
        forest_config.n_trees,
        threads,
        sps(seed_time),
        sps(engine_1t_time),
        sps(engine_nt_time),
        seed_time / engine_1t_time,
        seed_time / engine_nt_time,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_training.json");
    std::fs::write(&path, &json).expect("write BENCH_training.json");
    println!("wrote {}", path.display());
}
