//! Criterion bench: per-window feature-extraction cost for the paper's
//! 10-feature labeling set and the 54-feature real-time set, on the paper's
//! 4-second / 256 Hz windows.

use criterion::{criterion_group, criterion_main, Criterion};
use seizure_features::extractor::{FeatureExtractor, PaperFeatureSet, RichFeatureSet};

fn eeg_window(n: usize, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / 256.0;
            (2.0 * std::f64::consts::PI * 3.0 * t + phase).sin()
                + 0.4 * (2.0 * std::f64::consts::PI * 10.0 * t).sin()
                + 0.1 * ((i * 37) as f64).sin()
        })
        .collect()
}

fn bench_features(c: &mut Criterion) {
    let w1 = eeg_window(1024, 0.0);
    let w2 = eeg_window(1024, 1.0);

    let paper = PaperFeatureSet::new(256.0).unwrap();
    c.bench_function("paper_feature_set_window", |b| {
        b.iter(|| paper.extract_window(&w1, &w2).unwrap())
    });

    let rich = RichFeatureSet::new(256.0).unwrap();
    c.bench_function("rich_feature_set_window", |b| {
        b.iter(|| rich.extract_window(&w1, &w2).unwrap())
    });
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
