//! Criterion bench: Algorithm 1 scaling (experiment E8 of `DESIGN.md`).
//!
//! The paper's complexity claim is `O(L² · W · F)`; this bench measures the
//! reference implementation against the prefix-sum optimized variant as the
//! signal length `L` grows, with the paper's `F = 10` features and a window of
//! `W = 60` rows (a one-minute average seizure with one feature row per
//! second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seizure_core::algorithm::{posteriori_detect, DetectorConfig, Implementation};
use seizure_features::FeatureMatrix;

fn synthetic_matrix(rows: usize, features: usize) -> FeatureMatrix {
    let names = (0..features).map(|i| format!("f{i}")).collect();
    let data = (0..rows)
        .map(|r| {
            (0..features)
                .map(|f| {
                    ((r * 31 + f * 17) as f64 * 0.37).sin()
                        + if (rows / 3..rows / 3 + 60).contains(&r) {
                            3.0
                        } else {
                            0.0
                        }
                })
                .collect()
        })
        .collect();
    FeatureMatrix::from_rows(names, data).unwrap()
}

fn bench_algorithm(c: &mut Criterion) {
    let mut group = c.benchmark_group("posteriori_detect");
    group.sample_size(10);
    for &rows in &[300usize, 600, 1200] {
        let matrix = synthetic_matrix(rows, 10);
        let window = 60.min(rows / 4);
        group.bench_with_input(BenchmarkId::new("optimized", rows), &rows, |b, _| {
            let config = DetectorConfig {
                implementation: Implementation::Optimized,
                ..DetectorConfig::default()
            };
            b.iter(|| posteriori_detect(&matrix, window, &config).unwrap());
        });
        // The reference implementation is only benched at the smaller sizes to
        // keep the run time reasonable.
        if rows <= 600 {
            group.bench_with_input(BenchmarkId::new("reference", rows), &rows, |b, _| {
                let config = DetectorConfig {
                    implementation: Implementation::Reference,
                    ..DetectorConfig::default()
                };
                b.iter(|| posteriori_detect(&matrix, window, &config).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithm);
criterion_main!(benches);
