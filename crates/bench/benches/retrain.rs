//! Retraining benchmark: incremental engine vs from-scratch forest fitting.
//!
//! Reproduces the self-learning loop's dominant cost: the training pool has
//! accumulated windows from earlier missed seizures, a new batch arrives
//! (≤ 10 % of the pool) and the forest must be retrained. Two paths are
//! compared at paper scale:
//!
//! * **scratch**: what the loop paid before — rebuild the `TrainingSet`
//!   (full per-feature presort) and refit every tree with `train_forest`;
//! * **incremental**: `IncrementalTrainer::retrain` — merge the new rows
//!   into the presorted columns and refit only the trees whose bootstrap
//!   pools the growth touched.
//!
//! Before any timing, the incrementally grown forest is asserted identical
//! (node for node, and on batch predictions) to a single-shot incremental
//! fit of the final pool. Results are printed and written to
//! `BENCH_retrain.json` at the workspace root (skipped in `--quick` mode,
//! which the CI smoke job uses).
//!
//! Run with: `cargo bench -p seizure-bench --bench retrain [-- --quick]`

use std::time::Instant;

use seizure_bench::synth::synth_channels;
use seizure_features::extractor::{FeatureExtractor, RichFeatureSet, SlidingWindowConfig};
use seizure_ml::forest::RandomForestConfig;
use seizure_ml::incremental::{IncrementalTrainer, IncrementalTrainerConfig};
use seizure_ml::training::{train_forest, TrainingSet};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let fs = 256.0;
    let secs = if quick { 40.0 } else { 3600.0 };
    let reps = if quick { 2 } else { 5 };

    // Paper-scale pool: rich features of a synthetic record. Labels
    // alternate in record-sized runs so ownership blocks mix both classes,
    // like the pipeline's balanced per-record batches do.
    let (a, b) = synth_channels(secs, fs, 0x1357_9bdf_2468_acee);
    let cfg = SlidingWindowConfig::paper_default(fs).expect("paper config");
    let extractor = RichFeatureSet::new(fs).expect("extractor");
    let matrix = extractor.extract_batch(&a, &b, &cfg).expect("features");
    let samples = matrix.num_windows();
    let num_features = matrix.num_features();
    let labels: Vec<bool> = (0..samples).map(|i| (i / 20) % 2 == 0).collect();
    let rows = matrix.data();

    let forest_config = RandomForestConfig {
        n_trees: 30,
        max_depth: 8,
        ..RandomForestConfig::default()
    };
    let trainer_config = IncrementalTrainerConfig {
        forest: forest_config,
        block_size: 128,
    };
    let seed = 7;

    // The pool before the new batch (90 %) and the appended batch (10 %).
    let base = samples - samples / 10;
    let appended = samples - base;

    // Correctness gate: growing the pool in two steps must equal the
    // single-shot fit of the final pool, node for node and on predictions.
    let mut grown = IncrementalTrainer::new(trainer_config, seed);
    grown
        .retrain(&rows[..base * num_features], num_features, &labels[..base])
        .expect("base fit");
    let grown_forest = grown
        .retrain(&rows[base * num_features..], num_features, &labels[base..])
        .expect("incremental retrain");
    let refit_trees = grown.last_refit_count();
    let mut single = IncrementalTrainer::new(trainer_config, seed);
    let single_forest = single
        .retrain(rows, num_features, &labels)
        .expect("single-shot fit");
    assert_eq!(
        grown_forest, single_forest,
        "incremental retraining diverged from the from-scratch fit"
    );
    assert_eq!(
        grown_forest.predict_batch(rows, num_features).unwrap(),
        single_forest.predict_batch(rows, num_features).unwrap(),
        "prediction mismatch between incremental and from-scratch forests"
    );

    // --- Scratch path: full presort + full refit (what the loop paid). ---
    let mut scratch_time = f64::INFINITY;
    for _ in 0..=reps {
        let start = Instant::now();
        let set = TrainingSet::from_rows(rows, num_features, &labels).expect("training set");
        let forest = train_forest(&set, &forest_config, seed).expect("scratch forest");
        scratch_time = scratch_time.min(start.elapsed().as_secs_f64());
        assert_eq!(forest.num_trees(), forest_config.n_trees);
    }

    // --- Incremental path: append 10 % to the warm 90 % pool. ---
    let mut warm = IncrementalTrainer::new(trainer_config, seed);
    warm.retrain(&rows[..base * num_features], num_features, &labels[..base])
        .expect("warm fit");
    let mut incremental_time = f64::INFINITY;
    for _ in 0..=reps {
        let mut trainer = warm.clone();
        let start = Instant::now();
        let forest = trainer
            .retrain(&rows[base * num_features..], num_features, &labels[base..])
            .expect("incremental retrain");
        incremental_time = incremental_time.min(start.elapsed().as_secs_f64());
        assert_eq!(forest.num_trees(), forest_config.n_trees);
    }

    let speedup = scratch_time / incremental_time;
    let threads = seizure_parallel::num_threads();
    println!(
        "retrain bench ({samples} samples x {num_features} features, +{appended} appended, {} trees, {threads} thread(s))",
        forest_config.n_trees
    );
    println!(
        "  scratch refit (full train_forest): {:>8.1} ms",
        1e3 * scratch_time
    );
    println!(
        "  incremental retrain:               {:>8.1} ms ({refit_trees}/{} trees refitted, {speedup:.2}x)",
        1e3 * incremental_time,
        forest_config.n_trees
    );

    if quick {
        println!("--quick: skipping BENCH_retrain.json");
        return;
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"retrain\",\n",
            "  \"samples\": {},\n",
            "  \"appended_samples\": {},\n",
            "  \"features\": {},\n",
            "  \"trees\": {},\n",
            "  \"refitted_trees\": {},\n",
            "  \"threads\": {},\n",
            "  \"scratch_retrain_ms\": {:.2},\n",
            "  \"incremental_retrain_ms\": {:.2},\n",
            "  \"speedup\": {:.2}\n",
            "}}\n"
        ),
        samples,
        appended,
        num_features,
        forest_config.n_trees,
        refit_trees,
        threads,
        1e3 * scratch_time,
        1e3 * incremental_time,
        speedup,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_retrain.json");
    std::fs::write(&path, &json).expect("write BENCH_retrain.json");
    println!("wrote {}", path.display());
}
