//! Retraining benchmark: incremental engine vs from-scratch forest fitting.
//!
//! Reproduces the self-learning loop's dominant cost: the training pool has
//! accumulated windows from earlier missed seizures, a new batch arrives
//! (≤ 10 % of the pool) and the forest must be retrained. Two paths are
//! compared at paper scale:
//!
//! * **scratch**: what the loop paid before — rebuild the `TrainingSet`
//!   (full per-feature presort) and refit every tree with `train_forest`;
//! * **incremental**: `IncrementalTrainer::retrain` — merge the new rows
//!   into the presorted columns and refit only the trees whose bootstrap
//!   pools the growth touched.
//!
//! Before any timing, the incrementally grown forest is asserted identical
//! (node for node, and on batch predictions) to a single-shot incremental
//! fit of the final pool. Results are printed and written to
//! `BENCH_retrain.json` at the workspace root (skipped in `--quick` mode,
//! which the CI smoke job uses).
//!
//! A **pool-size sweep** (≈8 k / 32 k / 131 k windows, fixed 10 % append)
//! then times the block-local retrain against the trainer's
//! `reference_loads` mode, where every refitted tree scans the *whole*
//! presorted pool — the O(pool) load path the block-run layout replaced.
//! Both modes must produce bit-identical forests. Two gates run in every
//! mode (including `--quick`, so CI holds the floor):
//!
//! * **flatness** — per-refit cost normalised per owned sample must not
//!   grow with pool size (the largest pool may cost at most
//!   `SWEEP_FLAT_LIMIT`× the smallest per sample);
//! * **speedup** — at the largest pool the owned-block path must beat the
//!   O(pool) reference by at least `SWEEP_SPEEDUP_FLOOR`×.
//!
//! Run with: `cargo bench -p seizure-bench --bench retrain [-- --quick]`

use std::time::Instant;

use seizure_bench::synth::synth_channels;
use seizure_features::extractor::{FeatureExtractor, RichFeatureSet, SlidingWindowConfig};
use seizure_ml::forest::RandomForestConfig;
use seizure_ml::incremental::{IncrementalTrainer, IncrementalTrainerConfig};
use seizure_ml::training::{train_forest, TrainingSet};

/// Largest-to-smallest spread allowed in per-owned-sample refit cost across
/// the sweep. The owned-block path loads O(pool / n_trees) samples per
/// refitted tree, so this ratio sits near 1 with scheduling noise on top;
/// the replaced O(pool) path would push it toward `n_trees`.
const SWEEP_FLAT_LIMIT: f64 = 4.0;
/// Minimum speedup of the owned-block path over `reference_loads` at the
/// largest sweep pool.
const SWEEP_SPEEDUP_FLOOR: f64 = 5.0;

/// Deterministic synthetic feature rows for the pool-size sweep: hashed
/// noise in every column plus a class offset on feature 0 so the forest
/// grows real splits. Row-major, `nf` features per sample.
fn sweep_rows(n: usize, nf: usize) -> (Vec<f64>, Vec<bool>) {
    let labels: Vec<bool> = (0..n).map(|i| (i / 16) % 2 == 0).collect();
    let mut rows = Vec::with_capacity(n * nf);
    for i in 0..n * nf {
        let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x243F_6A88_85A3_08D3;
        x ^= x >> 31;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        let mut v = (x % 100_000) as f64 / 1_000.0;
        if i % nf == 0 && labels[i / nf] {
            v += 40.0;
        }
        rows.push(v);
    }
    (rows, labels)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let fs = 256.0;
    let secs = if quick { 40.0 } else { 3600.0 };
    let reps = if quick { 2 } else { 5 };

    // Paper-scale pool: rich features of a synthetic record. Labels
    // alternate in record-sized runs so ownership blocks mix both classes,
    // like the pipeline's balanced per-record batches do.
    let (a, b) = synth_channels(secs, fs, 0x1357_9bdf_2468_acee);
    let cfg = SlidingWindowConfig::paper_default(fs).expect("paper config");
    let extractor = RichFeatureSet::new(fs).expect("extractor");
    let matrix = extractor.extract_batch(&a, &b, &cfg).expect("features");
    let samples = matrix.num_windows();
    let num_features = matrix.num_features();
    let labels: Vec<bool> = (0..samples).map(|i| (i / 20) % 2 == 0).collect();
    let rows = matrix.data();

    let forest_config = RandomForestConfig {
        n_trees: 30,
        max_depth: 8,
        ..RandomForestConfig::default()
    };
    let trainer_config = IncrementalTrainerConfig {
        forest: forest_config,
        block_size: 128,
    };
    let seed = 7;

    // The pool before the new batch (90 %) and the appended batch (10 %).
    let base = samples - samples / 10;
    let appended = samples - base;

    // Correctness gate: growing the pool in two steps must equal the
    // single-shot fit of the final pool, node for node and on predictions.
    let mut grown = IncrementalTrainer::new(trainer_config, seed);
    grown
        .retrain(&rows[..base * num_features], num_features, &labels[..base])
        .expect("base fit");
    let grown_forest = grown
        .retrain(&rows[base * num_features..], num_features, &labels[base..])
        .expect("incremental retrain");
    let refit_trees = grown.last_refit_count();
    let mut single = IncrementalTrainer::new(trainer_config, seed);
    let single_forest = single
        .retrain(rows, num_features, &labels)
        .expect("single-shot fit");
    assert_eq!(
        grown_forest, single_forest,
        "incremental retraining diverged from the from-scratch fit"
    );
    assert_eq!(
        grown_forest.predict_batch(rows, num_features).unwrap(),
        single_forest.predict_batch(rows, num_features).unwrap(),
        "prediction mismatch between incremental and from-scratch forests"
    );

    // --- Scratch path: full presort + full refit (what the loop paid). ---
    let mut scratch_time = f64::INFINITY;
    for _ in 0..=reps {
        let start = Instant::now();
        let set = TrainingSet::from_rows(rows, num_features, &labels).expect("training set");
        let forest = train_forest(&set, &forest_config, seed).expect("scratch forest");
        scratch_time = scratch_time.min(start.elapsed().as_secs_f64());
        assert_eq!(forest.num_trees(), forest_config.n_trees);
    }

    // --- Incremental path: append 10 % to the warm 90 % pool. ---
    let mut warm = IncrementalTrainer::new(trainer_config, seed);
    warm.retrain(&rows[..base * num_features], num_features, &labels[..base])
        .expect("warm fit");
    let mut incremental_time = f64::INFINITY;
    for _ in 0..=reps {
        let mut trainer = warm.clone();
        let start = Instant::now();
        let forest = trainer
            .retrain(&rows[base * num_features..], num_features, &labels[base..])
            .expect("incremental retrain");
        incremental_time = incremental_time.min(start.elapsed().as_secs_f64());
        assert_eq!(forest.num_trees(), forest_config.n_trees);
    }

    let speedup = scratch_time / incremental_time;
    let threads = seizure_parallel::num_threads();
    println!(
        "retrain bench ({samples} samples x {num_features} features, +{appended} appended, {} trees, {threads} thread(s))",
        forest_config.n_trees
    );
    println!(
        "  scratch refit (full train_forest): {:>8.1} ms",
        1e3 * scratch_time
    );
    println!(
        "  incremental retrain:               {:>8.1} ms ({refit_trees}/{} trees refitted, {speedup:.2}x)",
        1e3 * incremental_time,
        forest_config.n_trees
    );

    // --- Pool-size sweep: block-local loads vs the O(pool) reference. ---
    let sweep_sizes: [usize; 3] = [8192, 32_768, 131_072];
    let sweep_nf = 8;
    let sweep_reps = if quick { 1 } else { 4 };
    let n_trees = forest_config.n_trees;
    println!(
        "pool sweep ({sweep_nf} features, 10% append, {} trees, block {}):",
        n_trees, trainer_config.block_size
    );
    let mut sweep = Vec::new();
    for &pool in &sweep_sizes {
        let (rows, labels) = sweep_rows(pool, sweep_nf);
        let base = pool - pool / 10;
        let appended = pool - base;
        let mut warm = IncrementalTrainer::new(trainer_config, seed);
        warm.retrain(&rows[..base * sweep_nf], sweep_nf, &labels[..base])
            .expect("sweep warm fit");

        // Owned-block path: refitted trees load only the blocks they own.
        let mut owned_time = f64::INFINITY;
        let mut refit_trees = 0;
        let mut owned_forest = None;
        for _ in 0..=sweep_reps {
            let mut trainer = warm.clone();
            let start = Instant::now();
            let forest = trainer
                .retrain(&rows[base * sweep_nf..], sweep_nf, &labels[base..])
                .expect("sweep retrain");
            owned_time = owned_time.min(start.elapsed().as_secs_f64());
            refit_trees = trainer.last_refit_count();
            owned_forest = Some(forest);
        }

        // Reference path: same trees, same draws, same forest — but every
        // refitted tree selects the whole presorted pool, the load cost the
        // global flat order forced on every refit.
        let mut reference_time = f64::INFINITY;
        let mut reference_forest = None;
        for _ in 0..=sweep_reps {
            let mut trainer = warm.clone();
            trainer.set_reference_loads(true);
            let start = Instant::now();
            let forest = trainer
                .retrain(&rows[base * sweep_nf..], sweep_nf, &labels[base..])
                .expect("sweep reference retrain");
            reference_time = reference_time.min(start.elapsed().as_secs_f64());
            reference_forest = Some(forest);
        }
        assert_eq!(
            owned_forest, reference_forest,
            "owned-block loads diverged from whole-pool reference loads at pool {pool}"
        );

        // Per-refit cost normalised by the samples a refitted tree owns
        // (pool / n_trees): flat when loads are block-local, growing
        // linearly in pool when they are not.
        let owned_samples = refit_trees as f64 * pool as f64 / n_trees as f64;
        let ns_per_owned_sample = 1e9 * owned_time / owned_samples;
        let speedup = reference_time / owned_time;
        println!(
            "  pool {pool:>6}: owned {:>8.2} ms  reference {:>8.2} ms  ({refit_trees}/{n_trees} trees, {:.1} ns/owned sample, {speedup:.2}x)",
            1e3 * owned_time,
            1e3 * reference_time,
            ns_per_owned_sample
        );
        sweep.push((
            pool,
            appended,
            refit_trees,
            owned_time,
            reference_time,
            ns_per_owned_sample,
            speedup,
        ));
    }

    // CI floor: per-refit cost stays ~flat per owned sample across the
    // sweep, and the largest pool beats the O(pool) reference path.
    let first_ns = sweep.first().expect("sweep ran").5;
    let last = sweep.last().expect("sweep ran");
    assert!(
        last.5 <= SWEEP_FLAT_LIMIT * first_ns,
        "per-refit cost is not flat: {:.1} ns/owned sample at pool {} vs {:.1} at pool {} (limit {SWEEP_FLAT_LIMIT}x)",
        last.5,
        last.0,
        first_ns,
        sweep[0].0,
    );
    assert!(
        last.6 >= SWEEP_SPEEDUP_FLOOR,
        "owned-block loads only {:.2}x faster than the O(pool) reference at pool {} (floor {SWEEP_SPEEDUP_FLOOR}x)",
        last.6,
        last.0,
    );

    if quick {
        println!("--quick: skipping BENCH_retrain.json");
        return;
    }
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(pool, appended, refits, owned, reference, ns, speedup)| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"pool_samples\": {},\n",
                    "      \"appended_samples\": {},\n",
                    "      \"refitted_trees\": {},\n",
                    "      \"owned_block_retrain_ms\": {:.3},\n",
                    "      \"reference_pool_retrain_ms\": {:.3},\n",
                    "      \"ns_per_owned_sample\": {:.1},\n",
                    "      \"speedup_vs_pool_loads\": {:.2}\n",
                    "    }}"
                ),
                pool,
                appended,
                refits,
                1e3 * owned,
                1e3 * reference,
                ns,
                speedup,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"retrain\",\n",
            "  \"samples\": {},\n",
            "  \"appended_samples\": {},\n",
            "  \"features\": {},\n",
            "  \"trees\": {},\n",
            "  \"refitted_trees\": {},\n",
            "  \"threads\": {},\n",
            "  \"scratch_retrain_ms\": {:.2},\n",
            "  \"incremental_retrain_ms\": {:.2},\n",
            "  \"speedup\": {:.2},\n",
            "  \"pool_sweep\": [\n{}\n  ]\n",
            "}}\n"
        ),
        samples,
        appended,
        num_features,
        forest_config.n_trees,
        refit_trees,
        threads,
        1e3 * scratch_time,
        1e3 * incremental_time,
        speedup,
        sweep_json.join(",\n"),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_retrain.json");
    std::fs::write(&path, &json).expect("write BENCH_retrain.json");
    println!("wrote {}", path.display());
}
