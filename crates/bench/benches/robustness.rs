//! Robustness benchmark: detection quality under hostile recording
//! conditions.
//!
//! A clean synthetic cohort flatters any detector: real wearables see
//! electrode pops, mains hum, motion baseline wander, lead-off dropouts,
//! amplifier saturation and gain drift. This bench trains two systems on
//! *clean* seizures —
//!
//! * **detector**: the pipeline frozen after its first observed seizure
//!   (the one-shot personalization a device ships with), and
//! * **self-learning**: the same pipeline after the full a-posteriori
//!   labeling loop over several missed seizures —
//!
//! then evaluates both on held-out records degraded by each
//! [`HostileScenario`](seizure_data::synth::HostileScenario), reporting
//! per-window sensitivity and specificity per scenario next to the clean
//! baseline. Degradations are applied to the *signal only*; the ground-truth
//! annotation stays where it was, so the metrics measure exactly what the
//! interference costs.
//!
//! Before any reporting, correctness gates assert that every scenario
//! evaluates without error and that the clean-baseline geometric mean clears
//! the same bar the core tests hold the pipeline to. Results are printed and
//! written to `BENCH_robustness.json` at the workspace root (skipped in
//! `--quick` mode, which the CI smoke job uses).
//!
//! Run with: `cargo bench -p seizure-bench --bench robustness [-- --quick]`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use seizure_core::pipeline::{LabelSource, SelfLearningPipeline};
use seizure_core::realtime::RealTimeDetectorConfig;
use seizure_core::LabelerConfig;
use seizure_data::cohort::Cohort;
use seizure_data::sampler::{EegRecord, SampleConfig};
use seizure_data::synth::{apply_scenario, HostileScenario};
use seizure_ml::forest::RandomForestConfig;

struct ScenarioResult {
    name: &'static str,
    detector_sensitivity: f64,
    detector_specificity: f64,
    selflearn_sensitivity: f64,
    selflearn_specificity: f64,
}

fn evaluate_pair(
    detector: &SelfLearningPipeline,
    selflearn: &SelfLearningPipeline,
    records: &[EegRecord],
    name: &'static str,
) -> ScenarioResult {
    let d = detector.evaluate_all(records).expect("detector evaluation");
    let s = selflearn
        .evaluate_all(records)
        .expect("self-learning evaluation");
    for value in [d.sensitivity, d.specificity, s.sensitivity, s.specificity] {
        assert!(
            (0.0..=1.0).contains(&value),
            "{name}: metric {value} out of range"
        );
    }
    ScenarioResult {
        name,
        detector_sensitivity: d.sensitivity,
        detector_specificity: d.specificity,
        selflearn_sensitivity: s.sensitivity,
        selflearn_specificity: s.specificity,
    }
}

/// Rebuilds each held-out record with its signal degraded by `scenario`;
/// annotations, patient and seizure indices are preserved.
fn degrade(records: &[EegRecord], scenario: HostileScenario, seed: u64) -> Vec<EegRecord> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    records
        .iter()
        .map(|record| {
            let degraded =
                apply_scenario(record.signal(), scenario, &mut rng).expect("scenario transform");
            let (_, annotation, patient_id, seizure_index) = record.clone().into_parts();
            EegRecord::new(degraded, annotation, patient_id, seizure_index)
                .expect("degraded record")
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cohort = Cohort::chb_mit_like(29);
    let patient = 8;
    let config = if quick {
        SampleConfig::new(150.0, 200.0, 64.0).expect("sample config")
    } else {
        SampleConfig::new(240.0, 300.0, 64.0).expect("sample config")
    };
    let train_seizures = if quick { 2 } else { 3 };
    let held_out_count = if quick { 2 } else { 3 };
    let w = cohort
        .average_seizure_duration(patient)
        .expect("seizure duration");
    let detector_config = RealTimeDetectorConfig {
        forest: RandomForestConfig {
            n_trees: if quick { 8 } else { 20 },
            max_depth: if quick { 6 } else { 8 },
            ..RandomForestConfig::default()
        },
        ..RealTimeDetectorConfig::default()
    };

    // Train on clean seizures; freeze the one-seizure baseline along the way.
    let mut pipeline = SelfLearningPipeline::new(LabelerConfig::default(), detector_config);
    let mut baseline = None;
    for seizure in 0..train_seizures {
        let record = cohort
            .sample_record(patient, seizure, &config, 7 + seizure as u64)
            .expect("training record");
        pipeline
            .observe_missed_seizure(&record, w, LabelSource::Algorithm)
            .expect("observe seizure");
        if baseline.is_none() {
            baseline = Some(pipeline.clone());
        }
    }
    let baseline = baseline.expect("at least one training seizure");

    // Held-out clean records: same patient, unseen sampling seeds.
    let held_out: Vec<EegRecord> = (0..held_out_count)
        .map(|i| {
            cohort
                .sample_record(patient, i, &config, 101 + i as u64)
                .expect("held-out record")
        })
        .collect();

    let mut results = vec![evaluate_pair(&baseline, &pipeline, &held_out, "clean")];
    for (i, scenario) in HostileScenario::all().into_iter().enumerate() {
        let degraded = degrade(&held_out, scenario, 0x5EED + i as u64);
        results.push(evaluate_pair(
            &baseline,
            &pipeline,
            &degraded,
            scenario.name(),
        ));
    }

    // Correctness gates: the clean baseline must clear the same bar the core
    // pipeline tests hold, and every hostile scenario must have evaluated.
    let clean = pipeline.evaluate_all(&held_out).expect("clean evaluation");
    assert!(
        clean.geometric_mean > 0.5,
        "clean-baseline gmean {} too low — the robustness table would be noise",
        clean.geometric_mean
    );
    assert_eq!(
        results.len(),
        1 + HostileScenario::all().len(),
        "every scenario must produce a row"
    );

    println!(
        "robustness bench ({} train seizures, {} held-out records, {} trees)",
        train_seizures, held_out_count, detector_config.forest.n_trees
    );
    println!(
        "  {:<16} {:>10} {:>10} {:>12} {:>12}",
        "scenario", "det sens", "det spec", "learn sens", "learn spec"
    );
    for r in &results {
        println!(
            "  {:<16} {:>10.3} {:>10.3} {:>12.3} {:>12.3}",
            r.name,
            r.detector_sensitivity,
            r.detector_specificity,
            r.selflearn_sensitivity,
            r.selflearn_specificity
        );
    }

    if quick {
        println!("--quick: skipping BENCH_robustness.json");
        return;
    }
    let mut rows = String::new();
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        rows.push_str(&format!(
            concat!(
                "    {{\"scenario\": \"{}\", ",
                "\"detector_sensitivity\": {:.4}, ",
                "\"detector_specificity\": {:.4}, ",
                "\"selflearn_sensitivity\": {:.4}, ",
                "\"selflearn_specificity\": {:.4}}}{}\n"
            ),
            r.name,
            r.detector_sensitivity,
            r.detector_specificity,
            r.selflearn_sensitivity,
            r.selflearn_specificity,
            comma,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"robustness\",\n",
            "  \"train_seizures\": {},\n",
            "  \"held_out_records\": {},\n",
            "  \"trees\": {},\n",
            "  \"scenarios\": [\n",
            "{}",
            "  ]\n",
            "}}\n"
        ),
        train_seizures, held_out_count, detector_config.forest.n_trees, rows,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_robustness.json");
    std::fs::write(&path, &json).expect("write BENCH_robustness.json");
    println!("wrote {}", path.display());
}
