//! Robustness benchmark: detection quality under hostile recording
//! conditions.
//!
//! A clean synthetic cohort flatters any detector: real wearables see
//! electrode pops, mains hum, motion baseline wander, lead-off dropouts,
//! amplifier saturation and gain drift. This bench trains three systems on
//! *clean* seizures —
//!
//! * **detector**: the ungated pipeline frozen after its first observed
//!   seizure (the one-shot personalization a device ships with),
//! * **self-learning**: the same ungated pipeline after the full
//!   a-posteriori labeling loop over several missed seizures, and
//! * **gated**: the self-learning pipeline with the signal-quality gate
//!   enabled — per-window artifact verdicts suppress alarms on `Reject`
//!   windows and the slow gain correction re-references drifted amplitudes —
//!
//! then evaluates all three on held-out records degraded by each
//! [`HostileScenario`](seizure_data::synth::HostileScenario) (plus one
//! [`MixedScenario`](seizure_data::synth::MixedScenario) overlay), reporting
//! per-window sensitivity, specificity and geometric mean per scenario next
//! to the clean baseline. Degradations are applied to the *signal only*; the
//! ground-truth annotation stays where it was, so the metrics measure
//! exactly what the interference costs.
//!
//! A second experiment poisons the self-learning loop itself: hostile
//! records are reported as "missed seizures" to a gated and an ungated
//! pipeline. The gated pipeline quarantines them before the a-posteriori
//! labeler runs; the ungated one labels garbage and learns from it. The
//! clean-record specificity of both afterwards quantifies the damage.
//!
//! Before any reporting, correctness gates assert (in quick *and* full
//! mode) that the clean-baseline geometric mean clears the bar the core
//! tests hold the pipeline to, that the gated detector's specificity on
//! every hostile scenario stays above a pinned floor, that the gate costs
//! at most one percentage point of clean sensitivity, and that the
//! quarantined loop does not collapse. Results are printed and written to
//! `BENCH_robustness.json` at the workspace root (skipped in `--quick`
//! mode, which the CI smoke job uses).
//!
//! Run with: `cargo bench -p seizure-bench --bench robustness [-- --quick]`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use seizure_core::pipeline::{LabelSource, SelfLearningPipeline, SelfLearningReport};
use seizure_core::realtime::RealTimeDetectorConfig;
use seizure_core::LabelerConfig;
use seizure_data::cohort::Cohort;
use seizure_data::sampler::{EegRecord, SampleConfig};
use seizure_data::signal::EegSignal;
use seizure_data::synth::{apply_scenario, HostileScenario, MixedScenario};
use seizure_ml::forest::RandomForestConfig;

/// Specificity floor the gated detector must hold on every hostile
/// scenario. The quick configuration trains a smaller forest on fewer
/// seizures, so its floor is slightly lower than the full run's.
const GATED_SPECIFICITY_FLOOR_FULL: f64 = 0.80;
const GATED_SPECIFICITY_FLOOR_QUICK: f64 = 0.75;
/// Maximum clean-record sensitivity the gate may cost vs the ungated
/// self-learning pipeline.
const GATE_SENSITIVITY_TOLERANCE: f64 = 0.01;

struct ScenarioResult {
    name: String,
    detector: SelfLearningReport,
    selflearn: SelfLearningReport,
    gated: SelfLearningReport,
}

fn evaluate_triplet(
    detector: &SelfLearningPipeline,
    selflearn: &SelfLearningPipeline,
    gated: &SelfLearningPipeline,
    records: &[EegRecord],
    name: String,
) -> ScenarioResult {
    let d = detector.evaluate_all(records).expect("detector evaluation");
    let s = selflearn
        .evaluate_all(records)
        .expect("self-learning evaluation");
    let g = gated.evaluate_all(records).expect("gated evaluation");
    for r in [&d, &s, &g] {
        for value in [r.sensitivity, r.specificity] {
            assert!(
                (0.0..=1.0).contains(&value),
                "{name}: metric {value} out of range"
            );
        }
    }
    ScenarioResult {
        name,
        detector: d,
        selflearn: s,
        gated: g,
    }
}

/// Rebuilds each held-out record with its signal degraded; annotations,
/// patient and seizure indices are preserved.
fn degrade_with<F>(records: &[EegRecord], seed: u64, mut transform: F) -> Vec<EegRecord>
where
    F: FnMut(&EegRecord, &mut ChaCha8Rng) -> EegSignal,
{
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    records
        .iter()
        .map(|record| {
            let degraded = transform(record, &mut rng);
            let (_, annotation, patient_id, seizure_index) = record.clone().into_parts();
            EegRecord::new(degraded, annotation, patient_id, seizure_index)
                .expect("degraded record")
        })
        .collect()
}

fn degrade(records: &[EegRecord], scenario: HostileScenario, seed: u64) -> Vec<EegRecord> {
    degrade_with(records, seed, |record, rng| {
        apply_scenario(record.signal(), scenario, rng).expect("scenario transform")
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cohort = Cohort::chb_mit_like(29);
    let patient = 8;
    let config = if quick {
        SampleConfig::new(150.0, 200.0, 64.0).expect("sample config")
    } else {
        SampleConfig::new(240.0, 300.0, 64.0).expect("sample config")
    };
    let train_seizures = if quick { 2 } else { 3 };
    let held_out_count = if quick { 2 } else { 3 };
    let w = cohort
        .average_seizure_duration(patient)
        .expect("seizure duration");
    let forest = RandomForestConfig {
        n_trees: if quick { 8 } else { 20 },
        max_depth: if quick { 6 } else { 8 },
        ..RandomForestConfig::default()
    };
    let ungated_config = RealTimeDetectorConfig {
        forest,
        quality_gate: false,
        ..RealTimeDetectorConfig::default()
    };
    let gated_config = RealTimeDetectorConfig {
        forest,
        quality_gate: true,
        ..RealTimeDetectorConfig::default()
    };

    // Train on clean seizures; freeze the one-seizure ungated baseline along
    // the way. The gated pipeline sees the same records in the same order,
    // calibrating its amplitude reference as it learns.
    let mut pipeline = SelfLearningPipeline::new(LabelerConfig::default(), ungated_config);
    let mut gated = SelfLearningPipeline::new(LabelerConfig::default(), gated_config);
    let mut baseline = None;
    for seizure in 0..train_seizures {
        let record = cohort
            .sample_record(patient, seizure, &config, 7 + seizure as u64)
            .expect("training record");
        pipeline
            .observe_missed_seizure(&record, w, LabelSource::Algorithm)
            .expect("observe seizure");
        gated
            .observe_missed_seizure(&record, w, LabelSource::Algorithm)
            .expect("observe seizure (gated)")
            .expect("clean training records must not be quarantined");
        if baseline.is_none() {
            baseline = Some(pipeline.clone());
        }
    }
    let baseline = baseline.expect("at least one training seizure");

    // Held-out clean records: same patient, unseen sampling seeds.
    let held_out: Vec<EegRecord> = (0..held_out_count)
        .map(|i| {
            cohort
                .sample_record(patient, i, &config, 101 + i as u64)
                .expect("held-out record")
        })
        .collect();

    let mut results = vec![evaluate_triplet(
        &baseline,
        &pipeline,
        &gated,
        &held_out,
        "clean".to_string(),
    )];
    for (i, scenario) in HostileScenario::all().into_iter().enumerate() {
        let degraded = degrade(&held_out, scenario, 0x5EED + i as u64);
        results.push(evaluate_triplet(
            &baseline,
            &pipeline,
            &gated,
            &degraded,
            scenario.name().to_string(),
        ));
    }
    // One compound degradation through the Mixed compositor: motion wander
    // with mains pickup riding on it, the classic "walking past a power
    // cable" field condition.
    let mixed = MixedScenario {
        first: HostileScenario::BaselineWander,
        second: HostileScenario::MainsHum,
    };
    let mixed_records = degrade_with(&held_out, 0x5EED + 100, |record, rng| {
        mixed
            .apply(record.signal(), 1.0, rng)
            .expect("mixed transform")
    });
    results.push(evaluate_triplet(
        &baseline,
        &pipeline,
        &gated,
        &mixed_records,
        mixed.name(),
    ));

    // Poisoned self-learning loop: hostile records reported as "missed
    // seizures". The gated pipeline must quarantine them before the
    // a-posteriori labeler runs; the ungated one labels garbage and learns
    // from it.
    let mut poisoned_ungated = pipeline.clone();
    let mut poisoned_gated = gated.clone();
    let poison_scenarios = [
        HostileScenario::Saturation,
        HostileScenario::MainsHum,
        HostileScenario::BaselineWander,
    ];
    for (i, scenario) in poison_scenarios.into_iter().enumerate() {
        let record = cohort
            .sample_record(patient, i % train_seizures, &config, 501 + i as u64)
            .expect("poison record");
        let hostile = degrade(&[record], scenario, 0xBAD + i as u64);
        poisoned_ungated
            .observe_missed_seizure(&hostile[0], w, LabelSource::Algorithm)
            .expect("poisoned observe");
        poisoned_gated
            .observe_missed_seizure(&hostile[0], w, LabelSource::Algorithm)
            .expect("poisoned observe (gated)");
    }
    let poisoned_ungated_report = poisoned_ungated
        .evaluate_all(&held_out)
        .expect("poisoned ungated evaluation");
    let poisoned_gated_report = poisoned_gated
        .evaluate_all(&held_out)
        .expect("poisoned gated evaluation");

    // Correctness gates, enforced in quick and full mode alike: CI runs the
    // quick configuration as its robustness smoke.
    let floor = if quick {
        GATED_SPECIFICITY_FLOOR_QUICK
    } else {
        GATED_SPECIFICITY_FLOOR_FULL
    };
    let clean = &results[0];
    assert!(
        clean.selflearn.geometric_mean > 0.5,
        "clean-baseline gmean {} too low — the robustness table would be noise",
        clean.selflearn.geometric_mean
    );
    assert!(
        clean.gated.sensitivity >= clean.selflearn.sensitivity - GATE_SENSITIVITY_TOLERANCE,
        "the quality gate costs clean sensitivity: gated {} vs ungated {}",
        clean.gated.sensitivity,
        clean.selflearn.sensitivity
    );
    for r in results.iter().skip(1) {
        assert!(
            r.gated.specificity >= floor,
            "{}: gated specificity {:.3} under the {floor} floor",
            r.name,
            r.gated.specificity
        );
    }
    assert!(
        poisoned_gated.num_quarantined() > 0,
        "the gate quarantined none of the hostile records"
    );
    assert!(
        poisoned_gated_report.specificity >= floor,
        "quarantined self-learning collapsed: clean specificity {:.3} after hostile records",
        poisoned_gated_report.specificity
    );
    assert_eq!(
        results.len(),
        2 + HostileScenario::all().len(),
        "every scenario must produce a row"
    );

    println!(
        "robustness bench ({} train seizures, {} held-out records, {} trees)",
        train_seizures,
        held_out_count,
        gated.detector().config().forest.n_trees
    );
    println!(
        "  {:<28} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "scenario",
        "det sens",
        "det spec",
        "sl sens",
        "sl spec",
        "gate sens",
        "gate spec",
        "gate gm"
    );
    for r in &results {
        println!(
            "  {:<28} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            r.name,
            r.detector.sensitivity,
            r.detector.specificity,
            r.selflearn.sensitivity,
            r.selflearn.specificity,
            r.gated.sensitivity,
            r.gated.specificity,
            r.gated.geometric_mean
        );
    }
    println!(
        "  poisoned loop: ungated sens/spec {:.3}/{:.3} | gated sens/spec {:.3}/{:.3} \
         ({} of {} records quarantined)",
        poisoned_ungated_report.sensitivity,
        poisoned_ungated_report.specificity,
        poisoned_gated_report.sensitivity,
        poisoned_gated_report.specificity,
        poisoned_gated.num_quarantined(),
        poison_scenarios.len()
    );

    if quick {
        println!("--quick: gates passed, skipping BENCH_robustness.json");
        return;
    }
    let mut rows = String::new();
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        rows.push_str(&format!(
            concat!(
                "    {{\"scenario\": \"{}\", ",
                "\"detector_sensitivity\": {:.4}, ",
                "\"detector_specificity\": {:.4}, ",
                "\"detector_gmean\": {:.4}, ",
                "\"selflearn_sensitivity\": {:.4}, ",
                "\"selflearn_specificity\": {:.4}, ",
                "\"selflearn_gmean\": {:.4}, ",
                "\"gated_sensitivity\": {:.4}, ",
                "\"gated_specificity\": {:.4}, ",
                "\"gated_gmean\": {:.4}}}{}\n"
            ),
            r.name,
            r.detector.sensitivity,
            r.detector.specificity,
            r.detector.geometric_mean,
            r.selflearn.sensitivity,
            r.selflearn.specificity,
            r.selflearn.geometric_mean,
            r.gated.sensitivity,
            r.gated.specificity,
            r.gated.geometric_mean,
            comma,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"robustness\",\n",
            "  \"train_seizures\": {},\n",
            "  \"held_out_records\": {},\n",
            "  \"trees\": {},\n",
            "  \"gated_specificity_floor\": {:.2},\n",
            "  \"poisoned_loop\": {{\n",
            "    \"hostile_records\": {},\n",
            "    \"quarantined\": {},\n",
            "    \"ungated_sensitivity\": {:.4},\n",
            "    \"ungated_specificity\": {:.4},\n",
            "    \"gated_sensitivity\": {:.4},\n",
            "    \"gated_specificity\": {:.4}\n",
            "  }},\n",
            "  \"scenarios\": [\n",
            "{}",
            "  ]\n",
            "}}\n"
        ),
        train_seizures,
        held_out_count,
        gated.detector().config().forest.n_trees,
        floor,
        poison_scenarios.len(),
        poisoned_gated.num_quarantined(),
        poisoned_ungated_report.sensitivity,
        poisoned_ungated_report.specificity,
        poisoned_gated_report.sensitivity,
        poisoned_gated_report.specificity,
        rows,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_robustness.json");
    std::fs::write(&path, &json).expect("write BENCH_robustness.json");
    println!("wrote {}", path.display());
}
