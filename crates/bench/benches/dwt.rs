//! Criterion bench: Daubechies-4 wavelet decomposition cost on the paper's
//! 4-second / 256 Hz analysis window, as a function of the decomposition
//! level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seizure_dsp::wavelet::{wavedec, Wavelet};

fn bench_dwt(c: &mut Criterion) {
    let window: Vec<f64> = (0..1024)
        .map(|i| {
            let t = i as f64 / 256.0;
            (2.0 * std::f64::consts::PI * 4.0 * t).sin() + 0.3 * ((i * 7) as f64).sin()
        })
        .collect();

    let mut group = c.benchmark_group("wavedec_db4_1024");
    for &levels in &[1usize, 3, 5, 7] {
        group.bench_with_input(
            BenchmarkId::from_parameter(levels),
            &levels,
            |b, &levels| b.iter(|| wavedec(&window, Wavelet::Daubechies4, levels).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dwt);
criterion_main!(benches);
