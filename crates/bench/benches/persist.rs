//! Persistence benchmark: delta-journal appends vs full snapshots.
//!
//! Reproduces the self-learning loop's per-seizure Flash write at paper
//! scale: the training pool has accumulated windows from earlier missed
//! seizures, a new batch arrives (10 % of the pool) and the trainer's state
//! must be made durable. Two writes are compared:
//!
//! * **full**: what the loop paid before — `persist::trainer_to_bytes`
//!   re-serializes the whole O(pool) trainer after every retrain;
//! * **delta**: `persist::journal::JournalWriter::append_retrain` — one
//!   checksummed O(batch) entry appended after the base snapshot.
//!
//! Before any timing, `journal::replay(base, journal)` is asserted to
//! reconstruct the exact uninterrupted trainer (node-identical forest), and
//! the per-retrain delta write is asserted ≥5x smaller than the full
//! snapshot for the 10 % append. Results are printed and written to
//! `BENCH_persist.json` at the workspace root (skipped in `--quick` mode,
//! which the CI smoke job uses).
//!
//! Run with: `cargo bench -p seizure-bench --bench persist [-- --quick]`

use std::time::Instant;

use seizure_bench::synth::synth_channels;
use seizure_features::extractor::{FeatureExtractor, RichFeatureSet, SlidingWindowConfig};
use seizure_ml::forest::RandomForestConfig;
use seizure_ml::incremental::{IncrementalTrainer, IncrementalTrainerConfig};
use seizure_ml::persist::journal::{replay, JournalWriter};
use seizure_ml::persist::trainer_to_bytes;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let fs = 256.0;
    let secs = if quick { 40.0 } else { 3600.0 };
    let reps = if quick { 2 } else { 10 };

    // Paper-scale pool, built exactly like the retrain bench's.
    let (a, b) = synth_channels(secs, fs, 0x1357_9bdf_2468_acee);
    let cfg = SlidingWindowConfig::paper_default(fs).expect("paper config");
    let extractor = RichFeatureSet::new(fs).expect("extractor");
    let matrix = extractor.extract_batch(&a, &b, &cfg).expect("features");
    let samples = matrix.num_windows();
    let num_features = matrix.num_features();
    let labels: Vec<bool> = (0..samples).map(|i| (i / 20) % 2 == 0).collect();
    let rows = matrix.data();

    let trainer_config = IncrementalTrainerConfig {
        forest: RandomForestConfig {
            n_trees: 30,
            max_depth: 8,
            ..RandomForestConfig::default()
        },
        block_size: 128,
    };
    let seed = 7;

    // The pool before the new batch (90 %) and the appended batch (10 %).
    let base_n = samples - samples / 10;
    let appended = samples - base_n;

    let mut trainer = IncrementalTrainer::new(trainer_config, seed);
    trainer
        .retrain(
            &rows[..base_n * num_features],
            num_features,
            &labels[..base_n],
        )
        .expect("base fit");
    let base = trainer_to_bytes(&trainer);
    let mut writer = JournalWriter::new(&base, trainer.num_samples()).expect("writer");
    trainer
        .retrain(
            &rows[base_n * num_features..],
            num_features,
            &labels[base_n..],
        )
        .expect("append retrain");
    writer
        .append_retrain(
            &rows[base_n * num_features..],
            num_features,
            &labels[base_n..],
        )
        .expect("journal append");
    let journal = writer.take_unflushed();
    let entry_bytes = journal.len();

    // Correctness gate: base + journal reconstruct the exact trainer, and a
    // replay costs one retrain, not a from-scratch fit.
    let replay_start = Instant::now();
    let replayed = replay(&base, &journal).expect("replay");
    let replay_time = replay_start.elapsed().as_secs_f64();
    assert_eq!(
        replayed.trainer, trainer,
        "journal replay diverged from the uninterrupted trainer"
    );
    assert_eq!(
        replayed.trainer.current_forest(),
        trainer.current_forest(),
        "replayed forest is not node-identical"
    );

    // --- Full path: re-serialize the whole pool after the retrain. ---
    let full_bytes = trainer_to_bytes(&trainer).len();
    let mut full_time = f64::INFINITY;
    for _ in 0..=reps {
        let start = Instant::now();
        let snapshot = trainer_to_bytes(&trainer);
        full_time = full_time.min(start.elapsed().as_secs_f64());
        assert_eq!(snapshot.len(), full_bytes);
    }

    // --- Delta path: one journal entry for the same batch. ---
    let mut delta_time = f64::INFINITY;
    for _ in 0..=reps {
        let mut w = JournalWriter::new(&base, base_n).expect("writer");
        let start = Instant::now();
        w.append_retrain(
            &rows[base_n * num_features..],
            num_features,
            &labels[base_n..],
        )
        .expect("journal append");
        delta_time = delta_time.min(start.elapsed().as_secs_f64());
        assert_eq!(w.len(), entry_bytes);
    }

    let write_reduction = full_bytes as f64 / entry_bytes as f64;
    println!(
        "persist bench ({samples} samples x {num_features} features, +{appended} appended, {} trees)",
        trainer_config.forest.n_trees
    );
    println!(
        "  full snapshot:  {:>9} bytes, {:>8.2} ms",
        full_bytes,
        1e3 * full_time
    );
    println!(
        "  journal append: {:>9} bytes, {:>8.2} ms ({write_reduction:.2}x smaller write)",
        entry_bytes,
        1e3 * delta_time
    );
    println!("  replay (base + 1 entry): {:>8.2} ms", 1e3 * replay_time);
    assert!(
        write_reduction >= 5.0,
        "a 10 % append must shrink the per-seizure write >=5x, got {write_reduction:.2}x"
    );

    if quick {
        println!("--quick: skipping BENCH_persist.json");
        return;
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"persist\",\n",
            "  \"samples\": {},\n",
            "  \"appended_samples\": {},\n",
            "  \"features\": {},\n",
            "  \"trees\": {},\n",
            "  \"full_snapshot_bytes\": {},\n",
            "  \"journal_entry_bytes\": {},\n",
            "  \"write_reduction\": {:.2},\n",
            "  \"full_snapshot_ms\": {:.3},\n",
            "  \"journal_append_ms\": {:.3},\n",
            "  \"replay_ms\": {:.2}\n",
            "}}\n"
        ),
        samples,
        appended,
        num_features,
        trainer_config.forest.n_trees,
        full_bytes,
        entry_bytes,
        write_reduction,
        1e3 * full_time,
        1e3 * delta_time,
        1e3 * replay_time,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_persist.json");
    std::fs::write(&path, &json).expect("write BENCH_persist.json");
    println!("wrote {}", path.display());
}
