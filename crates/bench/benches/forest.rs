//! Criterion bench: random-forest training and per-window prediction cost —
//! the per-window prediction cost is what drives the 75 % CPU duty cycle of
//! the real-time detector in the energy model.

use criterion::{criterion_group, criterion_main, Criterion};
use seizure_ml::dataset::Dataset;
use seizure_ml::forest::{RandomForest, RandomForestConfig};

fn synthetic_dataset(samples: usize, features: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..samples)
        .map(|i| {
            (0..features)
                .map(|f| {
                    ((i * 13 + f * 7) as f64 * 0.29).sin() + if i % 2 == 0 { 0.0 } else { 1.5 }
                })
                .collect()
        })
        .collect();
    let labels: Vec<bool> = (0..samples).map(|i| i % 2 == 1).collect();
    Dataset::new(rows, labels).unwrap()
}

fn bench_forest(c: &mut Criterion) {
    let data = synthetic_dataset(400, 54);
    let config = RandomForestConfig {
        n_trees: 30,
        max_depth: 8,
        ..RandomForestConfig::default()
    };

    let mut group = c.benchmark_group("random_forest");
    group.sample_size(10);
    group.bench_function("fit_400x54", |b| {
        b.iter(|| RandomForest::fit(&data, &config, 1).unwrap())
    });

    let forest = RandomForest::fit(&data, &config, 1).unwrap();
    let sample = data.features()[17].clone();
    group.bench_function("predict_window", |b| b.iter(|| forest.predict(&sample)));
    group.finish();
}

criterion_group!(benches, bench_forest);
criterion_main!(benches);
