//! Minimal offline implementation of the ChaCha8 random number generator.
//!
//! Implements the real ChaCha block function (8 rounds, 64-byte blocks,
//! 64-bit block counter) on top of the vendored [`rand`] subset. The key is
//! the 32-byte seed; the stream/nonce words start at zero. It is a proper,
//! statistically sound generator, but no attempt is made to match the output
//! stream of the upstream `rand_chacha` crate bit for bit.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn chacha_core_matches_rfc8439_shape() {
        // The RFC test vector uses 20 rounds, so exact equality is out of
        // scope; instead check the block function changes every word and the
        // counter advances the stream.
        let mut rng = ChaCha8Rng::from_seed([7u8; 32]);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
        assert!(first.iter().any(|&w| w != 0));
    }
}
