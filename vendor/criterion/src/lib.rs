//! Minimal offline benchmark harness exposing the slice of the `criterion`
//! API used by this workspace: [`Criterion::bench_function`], benchmark
//! groups with `sample_size` / `bench_with_input`, [`BenchmarkId`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Each benchmark is auto-calibrated to a per-sample target time, timed over
//! `sample_size` samples, and reported as the median ns/iteration with the
//! min..max spread. There are no plots, no statistical regression analysis
//! and no baseline comparisons — just honest wall-clock numbers suitable for
//! before/after comparisons in a terminal.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
    target_sample_time: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate the number of iterations per sample so one sample takes
        // roughly `target_sample_time`.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target_sample_time / 2 || iters >= 1 << 20 {
                let scale = self.target_sample_time.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
                iters = ((iters as f64 * scale).ceil() as u64).clamp(1, 1 << 22);
                break;
            }
            iters = iters.saturating_mul(4);
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples recorded)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() * 1e9 / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "{name:<50} time: [{} {} {}]",
            format_ns(min),
            format_ns(median),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            target_sample_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size: self.sample_size,
            target_sample_time: self.target_sample_time,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            target_sample_time: self.criterion.target_sample_time,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            target_sample_time: Duration::from_millis(1),
            ..Criterion::default()
        };
        c.sample_size(3);
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls = calls.wrapping_add(1)));
        assert!(calls > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            target_sample_time: Duration::from_millis(1),
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("group");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
