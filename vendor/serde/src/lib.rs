//! Offline facade for `serde`.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derive macros so the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compile in the
//! network-less build environment. No serialization machinery is provided —
//! nothing in the workspace serializes values yet.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
