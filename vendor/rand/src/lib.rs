//! Minimal offline drop-in subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored crate re-implements exactly the slice of the `rand` 0.8 API
//! that the workspace uses: [`RngCore`], the [`Rng`] extension trait with
//! `gen_range` / `gen_bool`, [`SeedableRng`] with the SplitMix64-based
//! `seed_from_u64` default, and [`seq::SliceRandom::shuffle`].
//!
//! It is API-compatible for the call sites in this repository but makes no
//! attempt to be stream-compatible with the upstream crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a half-open or inclusive range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a value uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Draws a value uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Converts 64 random bits into a uniform f64 in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from an empty range");
                let span = (high as i128 - low as i128) as u128;
                // Widening-multiply range reduction (Lemire); the modulo bias
                // of a 128-bit product against realistic spans is negligible.
                let r = rng.next_u64() as u128;
                low + ((r * span) >> 64) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from an empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let r = rng.next_u64() as u128;
                low + ((r * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample from an empty range");
        low + (high - low) * unit_f64(rng)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "cannot sample from an empty range");
        low + (high - low) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample from an empty range");
        low + (high - low) * unit_f64(rng) as f32
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "cannot sample from an empty range");
        low + (high - low) * unit_f64(rng) as f32
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` by expanding it with SplitMix64,
    /// mirroring the upstream default.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence-related helpers (`shuffle`).

    use super::{Rng, RngCore};

    /// Extension methods on slices that consume randomness.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place with the Fisher–Yates algorithm.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // A weak but well-distributed mixer for testing the adapters.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 ^ (self.0 >> 33)
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: usize = rng.gen_range(0..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(42);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
