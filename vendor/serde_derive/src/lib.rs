//! No-op derive macros backing the offline `serde` stub.
//!
//! The workspace only ever *derives* `Serialize` / `Deserialize` as forward
//! compatibility for a future persistence layer; nothing serializes values
//! yet. Expanding the derives to nothing keeps the annotations compiling
//! without pulling the real serde stack into the offline build.

use proc_macro::TokenStream;

/// Expands to nothing; accepts the same position as serde's `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts the same position as serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
