//! Minimal offline property-testing harness.
//!
//! Implements the subset of the `proptest` API this workspace uses — the
//! [`proptest!`] macro, range / tuple / `any` / `prop::collection::vec`
//! strategies, `prop_map` / `prop_filter` combinators and the
//! `prop_assert*` / `prop_assume!` macros — on a deterministic SplitMix64
//! generator seeded from the test name, so failures are reproducible.
//!
//! Unlike the real crate there is **no shrinking**: a failing case panics with
//! the generated inputs via the ordinary `assert!` machinery. That is a fair
//! trade for an offline build; the properties themselves are unchanged.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod collection;

pub mod arbitrary;

pub mod test_runner {
    //! Test-run configuration and the deterministic RNG.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 generator used to produce test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds a generator seeded deterministically from a test name.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name keeps runs reproducible without any
            // global state.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: hash }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Module-path re-exports (`prop::collection::vec`, ...).
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests over randomly generated inputs.
///
/// Supports the subset of the real macro grammar used in this repository:
/// an optional leading `#![proptest_config(...)]`, then `#[test]` functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __proptest_case in 0..config.cases {
                    let _ = __proptest_case;
                    $( let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property-test condition (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current generated case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0.0f64..10.0, 1usize..5), flag in any::<bool>(), bits in any::<u64>()) {
            prop_assert!((0.0..10.0).contains(&a));
            prop_assert!((1..5).contains(&b));
            let _ = (flag, bits);
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec(-1.0f64..1.0, 3..17)) {
            prop_assert!((3..17).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn map_and_filter(n in (1usize..50).prop_map(|x| x * 2).prop_filter("nonzero", |&x| x > 0)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n > 0);
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_across_instances() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
