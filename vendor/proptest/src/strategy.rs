//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Regenerates until `f` accepts the value (bounded; panics if the filter
    /// rejects too many candidates, mirroring proptest's rejection limit).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive candidates: {}",
            self.whence
        );
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy that always yields clones of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
