//! `any::<T>()` strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only, spread over a wide but numerically tame range.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u64>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
