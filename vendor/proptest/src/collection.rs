//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Length specification accepted by [`vec`]: a fixed length or a half-open
/// range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self {
            min: len,
            max: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec length range");
        Self {
            min: range.start,
            max: range.end,
        }
    }
}

/// Strategy generating `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min
            + if span > 0 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
